//! Benchmark and figure-regeneration harness for `patchsim`.
//!
//! Every table and figure of the paper's evaluation (§8) is a declarative
//! [`ExperimentPlan`] built by a constructor in this crate and executed by
//! the parallel deterministic [`Runner`] — the
//! binaries under `src/bin/` only pick a plan, declare result columns,
//! and emit:
//!
//! | Paper result | Target | Plan |
//! |---|---|---|
//! | Figure 4 (runtime, 5 workloads × 6 configs) | `fig4_runtime` | [`figure4_plan`] |
//! | Figure 5 (traffic breakdown) | `fig5_traffic` | [`figure4_plan`] |
//! | Figure 6 (bandwidth sweep, ocean) | `fig6_bandwidth_ocean` | [`bandwidth_plan`] |
//! | Figure 7 (bandwidth sweep, jbb) | `fig7_bandwidth_jbb` | [`bandwidth_plan`] |
//! | Figure 8 (4–512 core scalability) | `fig8_scalability` | [`scalability_plan`] |
//! | Figure 9 (inexact-encoding runtime) | `fig9_inexact_runtime` | [`inexact_runtime_plan`] |
//! | Figure 10 (inexact-encoding traffic) | `fig10_inexact_traffic` | [`inexact_traffic_plan`] |
//! | Cross-fabric scalability (extension) | `runplan fabric` | [`cross_fabric_plan`] |
//! | Fault-injection robustness (extension) | `runplan faults` | [`faults_plan`] |
//! | Service-shaped traffic (extension) | `runplan service` | [`service_plan`] |
//! | Open-loop saturation (extension) | `runplan saturation` | [`saturation_plan`] |
//! | DESIGN.md ablations | `ablation_*` | [`ablation_tenure_timeout_plan`], ... |
//! | Any of the above by name | `runplan <plan>` | [`plan_by_name`] |
//!
//! All binaries share one hardened command line ([`BenchArgs`]):
//! `--quick` (shrink cores/ops for a fast smoke run), `--seeds N`
//! (perturbed replications for confidence intervals), `--threads N`
//! (worker pool size; results are bit-identical at any thread count),
//! `--fabric {torus,mesh,ring,xbar,hier[:C]}` (interconnect topology for
//! any plan; plans with their own fabric axis override it),
//! `--faults SPEC` (deterministic interconnect fault mix — a preset like
//! `chaos` or `+`-joined clauses like `delay:0.02:200+dup:0.01`; the
//! `faults` plan's own axis overrides it),
//! `--workload {preset,trace:PATH}` (base-workload override: a preset
//! name like `oltp` or `svc-zipf`, or a recorded `.ptrc` trace to
//! replay; plans with a workload axis override it),
//! `--record-trace PATH` (record the plan's first cell to a `.ptrc`
//! trace), `--metrics PATH` and `--metrics-every CYCLES` (sample the
//! plan's first cell into an epoch-metrics JSONL time series),
//! `--spans` (record per-phase miss-lifecycle spans and append span
//! columns), `--flight-recorder DIR` (arm a bounded event ring on every
//! run, dumped to a `.fdr` file on safety/liveness failures),
//! `--progress` (a throttled stderr heartbeat while the sweep runs),
//! `--store DIR` (persist/resume results through a
//! content-addressed store — a killed sweep rerun with the same store
//! recomputes only what is missing and produces a byte-identical table),
//! `--cell-timeout SECS` and `--retries N` (cell-level fault isolation:
//! panicking or overrunning cells are retried, then reported failed
//! without aborting the sweep), `--format {text,csv,json}`, and
//! `--out PATH`. Unknown flags and malformed values print usage and exit
//! non-zero; completed-but-incomplete sweeps (failed cells) exit 3
//! (2 when a trace write failed). `--shard K/N` deterministically
//! partitions any plan's cells across N machines; `runplan merge-store
//! A B -o C` merges two stores with conflict detection, and `runplan
//! store-stats DIR [--prune-stale]` inventories (and garbage-collects)
//! a store.
//!
//! `cargo bench` additionally runs scaled-down versions of every figure
//! plus microbenchmarks of the simulator's core data structures.

pub mod harness;

use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Duration;

use patchsim::exp::{
    cell_key, AxisValue, Cell, ExperimentPlan, FailureKind, Format, ResultStore, Runner, Sweep,
    Table,
};
use patchsim::{
    presets, service_presets, ArrivalProfile, FabricKind, FaultSpec, LinkBandwidth,
    PredictorChoice, ProtocolKind, SharerEncoding, SimConfig, TenureConfig, TraceReader,
    TrafficClass, WorkloadSpec,
};

/// Experiment scale knobs shared by all figure targets.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Cores for the workload figures (the paper uses 64).
    pub cores: u16,
    /// Measured operations per core.
    pub ops: u64,
    /// Warmup operations per core.
    pub warmup: u64,
    /// Perturbed replications per data point.
    pub seeds: u64,
    /// Interconnect fabric every plan's base configuration uses
    /// (`--fabric`; plans with their own fabric axis override it).
    pub fabric: FabricKind,
    /// Interconnect fault mix every plan's base configuration uses
    /// (`--faults`; the `faults` plan's own axis overrides it).
    pub faults: FaultSpec,
    /// Workload override every plan's base configuration uses
    /// (`--workload`; plans with their own workload axis override it).
    /// A replayed trace additionally pins the base seed to the trace's
    /// recording seed, so the fault schedule replays too.
    pub workload: Option<WorkloadSpec>,
}

impl Scale {
    /// Paper-comparable scale (64 cores).
    pub fn full() -> Self {
        Scale {
            cores: 64,
            ops: 800,
            warmup: 1500,
            seeds: 1,
            fabric: FabricKind::Torus,
            faults: FaultSpec::none(),
            workload: None,
        }
    }

    /// A fast smoke-run scale.
    pub fn quick() -> Self {
        Scale {
            cores: 16,
            ops: 300,
            warmup: 1200,
            seeds: 1,
            fabric: FabricKind::Torus,
            faults: FaultSpec::none(),
            workload: None,
        }
    }

    /// The base configuration every plan starts from: `kind` at this
    /// scale's core count on this scale's fabric, fault mix, and
    /// workload override (when set).
    fn base(&self, kind: ProtocolKind, cores: u16) -> SimConfig {
        let mut config = SimConfig::new(kind, cores)
            .with_fabric(self.fabric)
            .with_faults(self.faults);
        if let Some(workload) = &self.workload {
            if let WorkloadSpec::Trace(trace) = workload {
                // Replay under the recording run's seed so every derived
                // stream (fault schedule included) replays bit-for-bit.
                config = config.with_seed(trace.seed);
            }
            config = config.with_workload(workload.clone());
        }
        config
    }
}

/// The shared figure-binary command line.
///
/// Parsing is strict: unknown flags, missing values, zero counts, and
/// unparseable numbers all print usage and exit with status 2 instead of
/// silently falling back to defaults.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Experiment scale (`--quick`, `--seeds N`).
    pub scale: Scale,
    /// Worker-thread override (`--threads N`); `None` uses all hardware
    /// threads.
    pub threads: Option<usize>,
    /// Output format (`--format {text,csv,json}`).
    pub format: Format,
    /// Output path (`--out PATH`); `None` writes to stdout.
    pub out: Option<PathBuf>,
    /// Trace-recording path (`--record-trace PATH`); when set,
    /// [`BenchArgs::run_plan`] records the plan's first cell (replication
    /// 0) to a `.ptrc` trace at this path.
    pub record: Option<PathBuf>,
    /// Epoch-metrics path (`--metrics PATH`); when set,
    /// [`BenchArgs::run_plan`] samples the plan's first cell
    /// (replication 0) into a JSONL time series at this path.
    pub metrics: Option<PathBuf>,
    /// Epoch length in cycles for `--metrics` sampling
    /// (`--metrics-every CYCLES`); `None` uses the default epoch.
    pub metrics_every: Option<u64>,
    /// Span recording (`--spans`): every run records per-phase
    /// miss-lifecycle spans and the emitted table gains span columns
    /// (see [`with_span_columns`]).
    pub spans: bool,
    /// Flight-recorder directory (`--flight-recorder DIR`): every run
    /// keeps a bounded ring of recent events and dumps it to a `.fdr`
    /// file under DIR when a safety or liveness oracle trips.
    pub flight_recorder: Option<PathBuf>,
    /// Progress heartbeat (`--progress`): print a throttled
    /// `patchsim: progress ...` line to stderr as cells finish.
    pub progress: bool,
    /// Result-store directory (`--store DIR`); when set, completed runs
    /// persist there and prior runs are loaded instead of recomputed, so
    /// an interrupted sweep resumes where it died (see `docs/resume.md`).
    pub store: Option<PathBuf>,
    /// Per-run wall-clock budget (`--cell-timeout SECS`); runs exceeding
    /// it fail their cell without aborting the sweep.
    pub cell_timeout: Option<Duration>,
    /// Retry budget for failed runs (`--retries N`); `None` uses the
    /// runner default (one retry).
    pub retries: Option<u32>,
    /// Sweep shard (`--shard K/N`, 1-based): run only the cells whose
    /// store key hashes to shard `K` of `N`. Shards partition any plan
    /// deterministically, so N machines can each run one shard into its
    /// own `--store` and `runplan merge-store` reassembles the sweep.
    pub shard: Option<(u64, u64)>,
}

/// The option block shared by every binary's usage text.
const OPTIONS_HELP: &str = "Options:
  --quick        shrink cores/ops for a fast smoke run
  --seeds N      perturbed replications per cell (default 1)
  --threads N    worker threads (default: all hardware threads)
  --fabric F     interconnect fabric: torus, mesh, ring, xbar, hier[:C]
                 (default torus; plans with a fabric axis override it)
  --faults SPEC  interconnect fault mix: none, a preset (jitter, reorder,
                 dup, slowlinks, slownodes, storm, chaos), or '+'-joined
                 clauses like delay:0.02:200+dup:0.01 (default none;
                 the faults plan's own axis overrides it)
  --workload W   workload override: a preset name (microbench, oltp,
                 apache, jbb, barnes, ocean, svc-uniform, svc-zipf,
                 svc-hot), trace:PATH to replay a recorded .ptrc trace,
                 or an open-loop arrival spec open:PROCESS[,OPT=V...] —
                 PROCESS is fixed:P, poisson:P, or burst:P:BP:BL:BD and
                 options are cap=N, policy={drop,block}, keys=N,
                 write=F, theta=F (see docs/workloads.md; plans with a
                 workload axis override it; a trace must match the
                 scale's core count and pins the base seed)
  --record-trace PATH
                 record the plan's first cell (replication 0) to a .ptrc
                 trace at PATH as it finishes
  --metrics PATH sample the plan's first cell (replication 0) into an
                 epoch-metrics JSONL time series at PATH (link
                 utilization, queue depths, table occupancy, protocol
                 activity; see docs/observability.md)
  --metrics-every CYCLES
                 epoch length for --metrics sampling (default 10000)
  --spans        record per-phase miss-lifecycle spans (issue, network,
                 home/ordering, token wait) on every run and append
                 span-mean columns to the table
  --flight-recorder DIR
                 keep a bounded ring of recent events on every run and
                 dump it to a .fdr file under DIR when a safety or
                 liveness oracle trips
  --progress     print a throttled progress heartbeat to stderr as the
                 sweep's cells finish
  --store DIR    persist each run's result in a content-addressed store
                 at DIR and resume from it: prior results load instead
                 of recomputing, so a killed sweep picks up where it
                 died (corrupt entries are quarantined and recomputed)
  --cell-timeout SECS
                 wall-clock budget per simulation run; runs exceeding it
                 fail their cell without aborting the sweep
  --retries N    retry failed runs N times before reporting the cell
                 failed (default 1; 0 disables retries)
  --shard K/N    run only shard K of N (1-based): cells are partitioned
                 deterministically by store key, so N machines each
                 running one shard into its own --store cover the whole
                 sweep, reassembled with 'runplan merge-store'
  --format FMT   output format: text, csv, json (default text)
  --out PATH     write the table to PATH instead of stdout
  -h, --help     print this help";

impl BenchArgs {
    /// Parses the process arguments, or prints usage and exits — with
    /// status 0 for `--help`, status 2 for anything malformed.
    pub fn parse(bin: &str, about: &str) -> Self {
        let (args, positional) = Self::parse_or_exit(bin, about, None);
        if let Some(p) = positional {
            usage_error(bin, about, None, &format!("unexpected argument '{p}'"));
        }
        args
    }

    /// Like [`BenchArgs::parse`] but accepts one positional argument
    /// (used by `runplan` for the plan name), described as `<positional>`
    /// in the usage text.
    pub fn parse_with_positional(
        bin: &str,
        about: &str,
        positional: &str,
    ) -> (Self, Option<String>) {
        Self::parse_or_exit(bin, about, Some(positional))
    }

    fn parse_or_exit(bin: &str, about: &str, positional: Option<&str>) -> (Self, Option<String>) {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        if raw.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", usage(bin, about, positional));
            std::process::exit(0);
        }
        match Self::try_parse(&raw) {
            Ok(parsed) => parsed,
            Err(msg) => usage_error(bin, about, positional, &msg),
        }
    }

    /// Parses an argument list. Returns the parsed flags plus at most one
    /// positional argument.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first unknown flag, missing or
    /// malformed value, or surplus positional argument.
    pub fn try_parse(raw: &[String]) -> Result<(Self, Option<String>), String> {
        let mut quick = false;
        let mut seeds: Option<u64> = None;
        let mut threads: Option<usize> = None;
        let mut fabric: Option<FabricKind> = None;
        let mut faults: Option<FaultSpec> = None;
        let mut workload: Option<WorkloadSpec> = None;
        let mut format = Format::Text;
        let mut out: Option<PathBuf> = None;
        let mut record: Option<PathBuf> = None;
        let mut metrics: Option<PathBuf> = None;
        let mut metrics_every: Option<u64> = None;
        let mut spans = false;
        let mut flight_recorder: Option<PathBuf> = None;
        let mut progress = false;
        let mut store: Option<PathBuf> = None;
        let mut cell_timeout: Option<Duration> = None;
        let mut retries: Option<u32> = None;
        let mut shard: Option<(u64, u64)> = None;
        let mut positional: Option<String> = None;
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--fabric" => {
                    let v = it.next().ok_or("--fabric requires a value")?;
                    fabric = Some(FabricKind::parse(v).ok_or_else(|| {
                        format!("invalid --fabric '{v}' (expected torus, mesh, ring, xbar, or hier[:C])")
                    })?);
                }
                "--faults" => {
                    let v = it.next().ok_or("--faults requires a value")?;
                    faults = Some(FaultSpec::parse(v).ok_or_else(|| {
                        format!("invalid --faults '{v}' (expected none, a preset like chaos, or '+'-joined clauses like delay:0.02:200+dup:0.01)")
                    })?);
                }
                "--seeds" => {
                    let v = it.next().ok_or("--seeds requires a value")?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("invalid --seeds value '{v}'"))?;
                    if n == 0 {
                        return Err("--seeds must be at least 1".into());
                    }
                    seeds = Some(n);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads requires a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value '{v}'"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    threads = Some(n);
                }
                "--format" => {
                    let v = it.next().ok_or("--format requires a value")?;
                    format = Format::parse(v).ok_or_else(|| {
                        format!("invalid --format '{v}' (expected text, csv, or json)")
                    })?;
                }
                "--workload" => {
                    let v = it.next().ok_or("--workload requires a value")?;
                    workload = Some(parse_workload(v)?);
                }
                "--record-trace" => {
                    let v = it.next().ok_or("--record-trace requires a value")?;
                    record = Some(PathBuf::from(v));
                }
                "--metrics" => {
                    let v = it.next().ok_or("--metrics requires a value")?;
                    metrics = Some(PathBuf::from(v));
                }
                "--metrics-every" => {
                    let v = it.next().ok_or("--metrics-every requires a value")?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("invalid --metrics-every value '{v}'"))?;
                    if n == 0 {
                        return Err("--metrics-every must be at least 1 cycle".into());
                    }
                    metrics_every = Some(n);
                }
                "--spans" => spans = true,
                "--flight-recorder" => {
                    let v = it.next().ok_or("--flight-recorder requires a value")?;
                    flight_recorder = Some(PathBuf::from(v));
                }
                "--progress" => progress = true,
                "--out" => {
                    let v = it.next().ok_or("--out requires a value")?;
                    out = Some(PathBuf::from(v));
                }
                "--store" => {
                    let v = it.next().ok_or("--store requires a value")?;
                    store = Some(PathBuf::from(v));
                }
                "--cell-timeout" => {
                    let v = it.next().ok_or("--cell-timeout requires a value")?;
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| format!("invalid --cell-timeout value '{v}'"))?;
                    if secs == 0 {
                        return Err("--cell-timeout must be at least 1 second".into());
                    }
                    cell_timeout = Some(Duration::from_secs(secs));
                }
                "--retries" => {
                    let v = it.next().ok_or("--retries requires a value")?;
                    let n: u32 = v
                        .parse()
                        .map_err(|_| format!("invalid --retries value '{v}'"))?;
                    retries = Some(n);
                }
                "--shard" => {
                    let v = it.next().ok_or("--shard requires a value")?;
                    let (k, n) = v
                        .split_once('/')
                        .ok_or_else(|| format!("invalid --shard '{v}' (expected K/N, e.g. 2/4)"))?;
                    let k: u64 = k
                        .parse()
                        .map_err(|_| format!("invalid --shard index '{v}'"))?;
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("invalid --shard count '{v}'"))?;
                    if n == 0 {
                        return Err("--shard count N must be at least 1".into());
                    }
                    if k == 0 || k > n {
                        return Err(format!("--shard index K must be in 1..=N (got {k}/{n})"));
                    }
                    shard = Some((k, n));
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag '{flag}'"));
                }
                value => {
                    if positional.is_some() {
                        return Err(format!("unexpected argument '{value}'"));
                    }
                    positional = Some(value.to_string());
                }
            }
        }
        let mut scale = if quick { Scale::quick() } else { Scale::full() };
        if let Some(n) = seeds {
            scale.seeds = n;
        }
        if let Some(f) = fabric {
            scale.fabric = f;
        }
        if let Some(f) = faults {
            scale.faults = f;
        }
        if let Some(WorkloadSpec::Trace(trace)) = &workload {
            if trace.num_nodes != scale.cores {
                return Err(format!(
                    "trace '{}' was recorded on {} cores but this scale runs {} \
                     (re-record at this scale or adjust --quick)",
                    trace.label, trace.num_nodes, scale.cores
                ));
            }
        }
        scale.workload = workload;
        if metrics_every.is_some() && metrics.is_none() {
            return Err("--metrics-every requires --metrics".into());
        }
        Ok((
            BenchArgs {
                scale,
                threads,
                format,
                out,
                record,
                metrics,
                metrics_every,
                spans,
                flight_recorder,
                progress,
                store,
                cell_timeout,
                retries,
                shard,
            },
            positional,
        ))
    }

    /// Runs `plan` on this invocation's runner, first arming trace
    /// recording and telemetry via [`BenchArgs::run_plan_armed`].
    pub fn run_plan(&self, plan: ExperimentPlan) -> Table {
        let plan = self.run_plan_armed(plan);
        self.runner().run(&plan)
    }

    /// Applies this invocation's sharding, trace recording, and
    /// telemetry flags to `plan` and returns it ready to run. Trace
    /// recording and metrics sampling arm only the plan's first cell
    /// (and within it only replication 0 — see `Runner`): one path, one
    /// output file, no last-writer-wins races across the pool. Spans
    /// and the flight recorder arm every cell.
    pub fn run_plan_armed(&self, mut plan: ExperimentPlan) -> ExperimentPlan {
        if let Some((k, n)) = self.shard {
            // Partition by store key: deterministic for a given plan and
            // CODE_VERSION, independent of axis order, and exactly the
            // key each retained cell writes under `--store` — so shard
            // outputs compose with `merge-store` by construction.
            plan.retain(|cell| cell_key(&cell.config) % n == k - 1);
        }
        if let Some(path) = &self.record {
            if let Some(cell) = plan.cells_mut().first_mut() {
                cell.config.record_trace = Some(path.clone());
            }
        }
        // Spans and the flight recorder arm every cell (they observe
        // each run from the inside); metrics, like trace recording,
        // arm only the first cell — one path, one time series.
        if self.spans || self.flight_recorder.is_some() {
            for cell in plan.cells_mut() {
                cell.config.telemetry.spans = self.spans;
                cell.config.telemetry.flight_recorder = self.flight_recorder.clone();
            }
        }
        if let Some(path) = &self.metrics {
            if let Some(cell) = plan.cells_mut().first_mut() {
                cell.config.telemetry.metrics = Some(path.clone());
                if let Some(every) = self.metrics_every {
                    cell.config.telemetry.metrics_every = every;
                }
            }
        }
        plan
    }

    /// The runner this invocation asked for: thread count, result store,
    /// cell timeout, and retry budget all applied. Exits with status 2
    /// when `--store` names a directory that cannot be created or opened.
    pub fn runner(&self) -> Runner {
        let mut runner = Runner::new().with_progress(self.progress);
        if let Some(n) = self.threads {
            runner = runner.with_threads(n);
        }
        if let Some(dir) = &self.store {
            match ResultStore::open(dir) {
                Ok(store) => runner = runner.with_store(store),
                Err(e) => {
                    eprintln!("patchsim: error: cannot open result store: {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(timeout) = self.cell_timeout {
            runner = runner.with_cell_timeout(timeout);
        }
        if let Some(retries) = self.retries {
            runner = runner.with_retries(retries);
        }
        runner
    }

    /// Writes `table` in the selected format to stdout or `--out`.
    ///
    /// # Errors
    ///
    /// Fails on an empty table (no cells or no columns — nothing a
    /// downstream consumer could use) and on I/O errors.
    pub fn emit(&self, table: &Table) -> io::Result<()> {
        if table.cells().is_empty() || table.columns().is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "refusing to emit an empty table",
            ));
        }
        match &self.out {
            Some(path) => {
                let mut file = std::fs::File::create(path)?;
                table.emit(self.format, &mut file)?;
                file.flush()?;
                eprintln!(
                    "patchsim: wrote {} rows to {}",
                    table.cells().len(),
                    path.display()
                );
                Ok(())
            }
            None => {
                let stdout = io::stdout();
                let mut lock = stdout.lock();
                table.emit(self.format, &mut lock)?;
                lock.flush()
            }
        }
    }

    /// Emits the table and exits non-zero when anything went wrong — the
    /// tail call of every figure binary.
    ///
    /// Exit statuses: 0 on success, 1 on emit failure, 2 when a cell's
    /// trace recording or metrics write failed (environment error: bad
    /// path, full disk), and 3 when cells failed (panic/timeout) after
    /// retries — the table still emits so surviving cells are not lost,
    /// but the sweep is incomplete and scripts must not treat it as
    /// green.
    pub fn finish(&self, table: &Table) {
        for failure in table.failures() {
            eprintln!(
                "patchsim: error: cell {} failed ({} after {} attempt{}): {}",
                failure.labels.join("/"),
                failure.kind,
                failure.attempts,
                if failure.attempts == 1 { "" } else { "s" },
                failure.error.replace(['\n', '\r'], " "),
            );
        }
        // A sweep whose every cell failed has nothing to emit; skip the
        // empty-table error so the failure summary is the last word.
        if !table.cells().is_empty() || table.failures().is_empty() {
            if let Err(e) = self.emit(table) {
                eprintln!("patchsim: error: {e}");
                std::process::exit(1);
            }
        }
        if !table.failures().is_empty() {
            let summary = format!("{} of the plan's cells failed", table.failures().len());
            if table
                .failures()
                .iter()
                .any(|f| matches!(f.kind, FailureKind::TraceWrite | FailureKind::MetricsWrite))
            {
                eprintln!("patchsim: error: {summary} (trace or metrics write failed)");
                std::process::exit(2);
            }
            eprintln!("patchsim: error: {summary}");
            std::process::exit(3);
        }
    }
}

fn usage(bin: &str, about: &str, positional: Option<&str>) -> String {
    let operands = match positional {
        Some(p) => format!(" <{p}>"),
        None => String::new(),
    };
    format!("{about}\n\nUsage: {bin} [OPTIONS]{operands}\n\n{OPTIONS_HELP}")
}

fn usage_error(bin: &str, about: &str, positional: Option<&str>, msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage(bin, about, positional));
    std::process::exit(2);
}

/// Parses a `--workload` value: a preset name, `trace:PATH`, or an
/// open-loop arrival spec `open:PROCESS[,OPT=V...]`.
fn parse_workload(value: &str) -> Result<WorkloadSpec, String> {
    if let Some(path) = value.strip_prefix("trace:") {
        let trace = TraceReader::read_path(std::path::Path::new(path))
            .map_err(|e| format!("cannot replay trace '{path}': {e}"))?;
        return Ok(WorkloadSpec::trace(trace));
    }
    if let Some(spec) = value.strip_prefix("open:") {
        let profile = ArrivalProfile::parse(spec)
            .map_err(|e| format!("invalid --workload '{value}': {e}"))?;
        return Ok(WorkloadSpec::OpenLoop(profile));
    }
    presets::by_name(value).ok_or_else(|| {
        format!(
            "invalid --workload '{value}' (expected a preset like oltp or \
             svc-zipf, trace:PATH, or open:SPEC)"
        )
    })
}

// ---------------------------------------------------------------------------
// Shared axes.
// ---------------------------------------------------------------------------

/// An axis over workloads, labeled by workload name.
pub fn workload_axis(workloads: Vec<WorkloadSpec>) -> Vec<AxisValue> {
    workloads
        .into_iter()
        .map(|w| {
            let label = w.name().to_string();
            AxisValue::new(label, move |c: SimConfig| c.with_workload(w.clone()))
        })
        .collect()
}

/// The six protocol configurations of Figures 4 and 5, in the paper's bar
/// order, as a plan axis.
pub fn figure4_protocol_axis() -> Vec<AxisValue> {
    let patch = |predictor: PredictorChoice| {
        move |c: SimConfig| c.with_kind(ProtocolKind::Patch).with_predictor(predictor)
    };
    vec![
        AxisValue::new("Directory", |c| c.with_kind(ProtocolKind::Directory)),
        AxisValue::new("PATCH-None", patch(PredictorChoice::None)),
        AxisValue::new("PATCH-Owner", patch(PredictorChoice::Owner)),
        AxisValue::new(
            "PATCH-BcastIfShared",
            patch(PredictorChoice::BroadcastIfShared),
        ),
        AxisValue::new("PATCH-All", patch(PredictorChoice::All)),
        AxisValue::new("TokenB", |c| c.with_kind(ProtocolKind::TokenB)),
    ]
}

/// The three competing configurations of Figures 6–8: DIRECTORY,
/// non-adaptive PATCH-All, and adaptive PATCH-All.
pub fn adaptivity_protocol_axis() -> Vec<AxisValue> {
    vec![
        AxisValue::new("Directory", |c| c.with_kind(ProtocolKind::Directory)),
        AxisValue::new("PATCH-All-NA", |c| {
            let c = c
                .with_kind(ProtocolKind::Patch)
                .with_predictor(PredictorChoice::All);
            let protocol = c.protocol.clone().non_adaptive();
            c.with_protocol(protocol)
        }),
        AxisValue::new("PATCH-All", |c| {
            c.with_kind(ProtocolKind::Patch)
                .with_predictor(PredictorChoice::All)
        }),
    ]
}

/// An axis value resizing the system to `cores` on the steady-state
/// microbenchmark schedule, preserving every other protocol setting.
pub fn cores_value(cores: u16) -> AxisValue {
    AxisValue::new(cores.to_string(), move |c: SimConfig| {
        let (warmup, ops) = microbench_schedule(cores);
        let mut protocol = c.protocol.clone();
        protocol.num_nodes = cores;
        protocol.total_tokens = cores as u32;
        c.with_protocol(protocol)
            .with_ops_per_core(ops)
            .with_warmup(warmup)
    })
}

/// An axis over interconnect fabrics (all five shipped topologies),
/// labeled by fabric name. The fabric transform overrides whatever the
/// base configuration (and `--fabric`) selected.
pub fn fabric_axis() -> Vec<AxisValue> {
    FabricKind::ALL
        .into_iter()
        .map(|kind| AxisValue::new(kind.label(), move |c: SimConfig| c.with_fabric(kind)))
        .collect()
}

/// An axis over the shipped fault-mix presets (including `none`), labeled
/// by preset name. The fault transform overrides whatever the base
/// configuration (and `--faults`) selected.
pub fn faults_axis() -> Vec<AxisValue> {
    FaultSpec::PRESETS
        .into_iter()
        .map(|name| {
            let spec = FaultSpec::parse(name).expect("shipped preset parses");
            AxisValue::new(name, move |c: SimConfig| c.with_faults(spec))
        })
        .collect()
}

/// The protocol axis of the fault-injection plan: one representative per
/// protocol family (directory, PATCH, broadcast token counting), so the
/// sweep shows which families a fault mix degrades.
pub fn fault_protocol_axis() -> Vec<AxisValue> {
    vec![
        AxisValue::new("Directory", |c| c.with_kind(ProtocolKind::Directory)),
        AxisValue::new("PATCH-All", |c| {
            c.with_kind(ProtocolKind::Patch)
                .with_predictor(PredictorChoice::All)
        }),
        AxisValue::new("TokenB", |c| c.with_kind(ProtocolKind::TokenB)),
    ]
}

/// An axis value selecting a sharer-encoding coarseness of `k` cores per
/// bit (`k == 1` is the full map), labeled by `k`.
pub fn coarseness_value(k: u16) -> AxisValue {
    AxisValue::new(k.to_string(), move |c: SimConfig| {
        let encoding = if k <= 1 {
            SharerEncoding::FullMap
        } else {
            SharerEncoding::Coarse { cores_per_bit: k }
        };
        let protocol = c.protocol.clone().with_sharer_encoding(encoding);
        c.with_protocol(protocol)
    })
}

// ---------------------------------------------------------------------------
// Figure plans.
// ---------------------------------------------------------------------------

/// The Figure 4/5 grid: the five paper workloads × the six protocol
/// configurations at the scale's core count.
pub fn figure4_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, scale.cores)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(format!("Figure 4/5 grid ({} cores)", scale.cores), base)
        .axis("workload", workload_axis(presets::all()))
        .axis("config", figure4_protocol_axis())
        .seeds(scale.seeds)
        .build()
}

/// The paper's bandwidth sweep points (bytes per 1000 cycles, Figures 6–7).
pub const BANDWIDTH_SWEEP: [f64; 6] = [300.0, 600.0, 900.0, 2000.0, 4000.0, 8000.0];

/// The Figure 6/7 grid for one workload: the paper's six link bandwidths ×
/// {DIRECTORY, PATCH-All-NA, PATCH-All}.
pub fn bandwidth_plan(scale: Scale, workload: WorkloadSpec) -> ExperimentPlan {
    let name = format!(
        "Bandwidth adaptivity on {} ({} cores)",
        workload.name(),
        scale.cores
    );
    let base = scale
        .base(ProtocolKind::Directory, scale.cores)
        .with_workload(workload)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(name, base)
        .axis(
            "bytes_per_kcycle",
            BANDWIDTH_SWEEP
                .iter()
                .map(|&bw| {
                    AxisValue::new(format!("{bw:.0}"), move |c: SimConfig| {
                        c.with_bandwidth(LinkBandwidth::BytesPerCycle(bw / 1000.0))
                    })
                })
                .collect(),
        )
        .axis("config", adaptivity_protocol_axis())
        .seeds(scale.seeds)
        .build()
}

/// The Figure 8 core counts (`--quick` stops at 64).
pub fn scalability_core_counts(scale: &Scale) -> &'static [u16] {
    if scale.cores <= 16 {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16, 32, 64, 128, 256, 512]
    }
}

/// The Figure 8 grid: core counts × {DIRECTORY, PATCH-All-NA, PATCH-All}
/// on the microbenchmark with 2-byte/cycle links.
pub fn scalability_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, 4)
        .with_workload(WorkloadSpec::microbenchmark())
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0));
    Sweep::new("Microbenchmark scalability (2 B/cycle links)", base)
        .axis(
            "cores",
            scalability_core_counts(&scale)
                .iter()
                .map(|&n| cores_value(n))
                .collect(),
        )
        .axis("config", adaptivity_protocol_axis())
        .seeds(scale.seeds)
        .build()
}

/// The Figure 9/10 core counts (`--quick` uses small systems).
pub fn inexact_core_counts(scale: &Scale) -> &'static [u16] {
    if scale.cores <= 16 {
        &[16, 32]
    } else {
        &[64, 128, 256]
    }
}

/// The coarseness sweep (`K` cores per sharer bit) of Figures 9–10.
pub const COARSENESS_SWEEP: [u16; 5] = [1, 4, 16, 64, 256];

/// The protocol axis of Figures 9–10: DIRECTORY vs (predictorless) PATCH.
pub fn inexact_protocol_axis() -> Vec<AxisValue> {
    vec![
        AxisValue::new("Directory", |c| c.with_kind(ProtocolKind::Directory)),
        AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
    ]
}

/// Keeps coarseness cells whose `K` does not exceed the cell's core count
/// (a 256-cores-per-bit encoding is meaningless on a 64-core system).
fn coarseness_fits(cell: &Cell) -> bool {
    match cell.config.protocol.sharer_encoding {
        SharerEncoding::Coarse { cores_per_bit } => cores_per_bit <= cell.config.protocol.num_nodes,
        _ => true,
    }
}

/// The Figure 9 grid: core counts × protocol × {unbounded, 2 B/cycle}
/// links × sharer-encoding coarseness (clamped to the core count).
pub fn inexact_runtime_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, 4)
        .with_workload(WorkloadSpec::microbenchmark());
    Sweep::new("Runtime vs sharer-encoding coarseness", base)
        .axis(
            "cores",
            inexact_core_counts(&scale)
                .iter()
                .map(|&n| cores_value(n))
                .collect(),
        )
        .axis("config", inexact_protocol_axis())
        .axis(
            "links",
            vec![
                AxisValue::new("inf", |c| c.with_bandwidth(LinkBandwidth::Unbounded)),
                AxisValue::new("2B/c", |c| {
                    c.with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
                }),
            ],
        )
        .axis(
            "K",
            COARSENESS_SWEEP
                .iter()
                .map(|&k| coarseness_value(k))
                .collect(),
        )
        .filter(coarseness_fits)
        .seeds(scale.seeds)
        .build()
}

/// The Figure 10 grid: like [`inexact_runtime_plan`] but at the paper's
/// constrained 2-byte/cycle links only (the traffic figure).
pub fn inexact_traffic_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, 4)
        .with_workload(WorkloadSpec::microbenchmark())
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0));
    Sweep::new(
        "Traffic vs sharer-encoding coarseness (2 B/cycle links)",
        base,
    )
    .axis(
        "cores",
        inexact_core_counts(&scale)
            .iter()
            .map(|&n| cores_value(n))
            .collect(),
    )
    .axis("config", inexact_protocol_axis())
    .axis(
        "K",
        COARSENESS_SWEEP
            .iter()
            .map(|&k| coarseness_value(k))
            .collect(),
    )
    .filter(coarseness_fits)
    .seeds(scale.seeds)
    .build()
}

/// The cross-fabric scalability core counts. Full scale stops at 128 —
/// it multiplies Figure 8's grid by five fabrics — and `--quick` keeps
/// two small systems.
pub fn cross_fabric_core_counts(scale: &Scale) -> &'static [u16] {
    if scale.cores <= 16 {
        &[4, 16]
    } else {
        &[4, 8, 16, 32, 64, 128]
    }
}

/// The cross-fabric scalability grid (Figure 8 style): core counts ×
/// all five fabrics × {DIRECTORY, PATCH-All-NA, PATCH-All} on the
/// microbenchmark with 2-byte/cycle links. This is the fabric
/// sensitivity study the paper could not run: how hop count (ring vs.
/// torus vs. mesh), bisection bandwidth (hierarchical gateways), and
/// multicast cost (crossbar's single-hop fan-out) shift the
/// directory/PATCH/token trade-off.
pub fn cross_fabric_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, 4)
        .with_workload(WorkloadSpec::microbenchmark())
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0));
    Sweep::new("Cross-fabric scalability (2 B/cycle links)", base)
        .axis(
            "cores",
            cross_fabric_core_counts(&scale)
                .iter()
                .map(|&n| cores_value(n))
                .collect(),
        )
        .axis("fabric", fabric_axis())
        .axis("config", adaptivity_protocol_axis())
        .seeds(scale.seeds)
        .build()
}

/// The liveness horizon armed on every fault-injection cell: any single
/// miss outstanding longer than this fails the run (see
/// `SimConfig::liveness_horizon`). Generous against the worst shipped
/// fault mix (`chaos` storms multiply serialization 8× for stretches),
/// yet far below `max_cycles`, so starvation surfaces as a watchdog
/// panic naming the starved core instead of a silent timeout.
pub const FAULT_LIVENESS_HORIZON: u64 = 200_000;

/// The fault-injection robustness grid: every shipped fault preset ×
/// one protocol per family × {torus, hier} fabrics, with invariant
/// checking on and the starvation watchdog armed. This is the paper's
/// unasked question: token counting's safety argument (Table 1) is
/// delivery-order independent, but its *performance* under an unreliable
/// interconnect — duplicated token-free requests, reordered persistent
/// ops, degraded links — is not, and this sweep measures the gap.
pub fn faults_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, scale.cores)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup)
        .with_checks()
        .with_liveness_horizon(FAULT_LIVENESS_HORIZON);
    Sweep::new(
        format!("Fault-injection robustness ({} cores)", scale.cores),
        base,
    )
    .axis("config", fault_protocol_axis())
    .axis("faults", faults_axis())
    .axis(
        "fabric",
        vec![
            AxisValue::new("torus", |c| c.with_fabric(FabricKind::Torus)),
            AxisValue::new("hier", |c| {
                c.with_fabric(FabricKind::Hierarchical { cluster: None })
            }),
        ],
    )
    .seeds(scale.seeds)
    .build()
}

/// The burst shape of the `service` plan's bursty-arrival cells: every
/// 256 generator steps, 64 operations arrive with think times divided
/// by 8 — a closed-loop approximation of an open-loop arrival burst.
pub const SERVICE_BURST: (u64, u64, u64) = (256, 64, 8);

/// The service-traffic grid: key-skew shape (uniform, Zipfian, Zipfian
/// with rotating hot set and tenant phases) × arrival shape (steady vs
/// bursty) × one protocol per family. Datacenter services hit coherence
/// protocols with skewed, phase-changing, bursty sharing that the
/// paper's SPLASH/commercial workloads do not model; this sweep asks
/// which protocol family degrades first as skew and burstiness rise.
pub fn service_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, scale.cores)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(
        format!("Service-shaped traffic ({} cores)", scale.cores),
        base,
    )
    .axis(
        "skew",
        workload_axis(vec![
            service_presets::uniform(),
            service_presets::zipf(),
            service_presets::zipf_hot(),
        ]),
    )
    .axis(
        "arrivals",
        vec![
            AxisValue::new("steady", |c| c),
            AxisValue::new("burst", |mut c: SimConfig| {
                let (period, len, div) = SERVICE_BURST;
                if let WorkloadSpec::Service(p) = &mut c.workload {
                    *p = p.clone().with_burst(period, len, div);
                }
                c
            }),
        ],
    )
    .axis("config", fault_protocol_axis())
    .seeds(scale.seeds)
    .build()
}

/// The Poisson interarrival periods (cycles between arrivals, per core)
/// the `saturation` plan sweeps, slowest first. The early points sit
/// well under every protocol's service rate (goodput tracks offered
/// load, empty backlogs); the late points drive each configuration past
/// its knee, where drops appear and sojourn time grows without bound.
pub const SATURATION_PERIODS: [u64; 6] = [400, 200, 100, 50, 25, 12];

/// The open-loop saturation grid: offered load (Poisson interarrival
/// period) × one protocol per family × {torus, hier} fabrics. Every
/// other plan is closed-loop — each core issues, waits, thinks — so a
/// slow protocol quietly sheds load and "runtime" absorbs the damage.
/// This sweep decouples arrivals from completions behind a bounded
/// per-core backlog (drop policy), exposing the saturation behaviour a
/// closed loop cannot show: offered vs achieved rate, drop rate, and
/// arrival→completion sojourn time exploding past the knee while the
/// issue→completion miss latency stays flat.
pub fn saturation_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Directory, scale.cores)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(
        format!("Open-loop saturation ({} cores)", scale.cores),
        base,
    )
    .axis(
        "load",
        SATURATION_PERIODS
            .into_iter()
            .map(|period| {
                let profile = ArrivalProfile::parse(&format!("poisson:{period}"))
                    .expect("shipped arrival spec parses");
                AxisValue::new(period.to_string(), move |c: SimConfig| {
                    c.with_workload(WorkloadSpec::OpenLoop(profile.clone()))
                })
            })
            .collect(),
    )
    .axis("config", fault_protocol_axis())
    .axis(
        "fabric",
        vec![
            AxisValue::new("torus", |c| c.with_fabric(FabricKind::Torus)),
            AxisValue::new("hier", |c| {
                c.with_fabric(FabricKind::Hierarchical { cluster: None })
            }),
        ],
    )
    .seeds(scale.seeds)
    .build()
}

/// Warmup/measurement schedule for the microbenchmark experiments
/// (Figures 8–10): the paper measures warmed, steady-state caches, so
/// the per-core operation budget is derived from the table size — the
/// *total* access count stays at several multiples of the 16k-block
/// table no matter how many cores split the work.
pub fn microbench_schedule(cores: u16) -> (u64, u64) {
    let table: u64 = 16 * 1024;
    let warmup = (2 * table / cores as u64).max(32);
    let ops = (3 * table / cores as u64).max(64);
    (warmup, ops)
}

// ---------------------------------------------------------------------------
// Ablation plans.
// ---------------------------------------------------------------------------

/// Ablation: tenure-timeout policy (fixed sweeps vs the paper's adaptive
/// 2× round-trip) on a contended microbenchmark.
pub fn ablation_tenure_timeout_plan(scale: Scale) -> ExperimentPlan {
    // A contended workload where tenure actually fires: many writers on a
    // small hot table.
    let workload = WorkloadSpec::Microbenchmark {
        table_blocks: 256,
        write_frac: 0.5,
        think_mean: 5,
    };
    let base = scale
        .base(ProtocolKind::Patch, scale.cores)
        .with_predictor(PredictorChoice::All)
        .with_workload(workload)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    let policies: Vec<(&str, TenureConfig)> = vec![
        ("fixed-50", TenureConfig::Fixed(50)),
        ("fixed-200", TenureConfig::Fixed(200)),
        ("fixed-800", TenureConfig::Fixed(800)),
        ("fixed-3200", TenureConfig::Fixed(3200)),
        ("adaptive-2x", TenureConfig::paper_default()),
    ];
    Sweep::new(
        "Ablation: tenure timeout policy (PATCH-All, contended)",
        base,
    )
    .axis(
        "policy",
        policies
            .into_iter()
            .map(|(label, tenure)| {
                AxisValue::new(label, move |c: SimConfig| {
                    let protocol = c.protocol.clone().with_tenure(tenure);
                    c.with_protocol(protocol)
                })
            })
            .collect(),
    )
    .seeds(scale.seeds)
    .build()
}

/// Ablation: the post-deactivation direct-request ignore window.
pub fn ablation_deact_window_plan(scale: Scale) -> ExperimentPlan {
    let workload = WorkloadSpec::Microbenchmark {
        table_blocks: 128,
        write_frac: 0.5,
        think_mean: 3,
    };
    let base = scale
        .base(ProtocolKind::Patch, scale.cores)
        .with_predictor(PredictorChoice::All)
        .with_workload(workload)
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(
        "Ablation: post-deactivation ignore window (PATCH-All)",
        base,
    )
    .axis(
        "window",
        vec![
            AxisValue::new("enabled", |c| c),
            AxisValue::new("disabled", |c| {
                let protocol = c.protocol.clone().without_deact_window();
                c.with_protocol(protocol)
            }),
        ],
    )
    .seeds(scale.seeds)
    .build()
}

/// Ablation: the best-effort staleness bound under constrained bandwidth.
pub fn ablation_stale_drop_plan(scale: Scale) -> ExperimentPlan {
    let base = scale
        .base(ProtocolKind::Patch, scale.cores)
        .with_predictor(PredictorChoice::All)
        .with_bandwidth(LinkBandwidth::BytesPerCycle(1.0))
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(
        "Ablation: stale-drop threshold (PATCH-All, 1 B/cycle links)",
        base,
    )
    .axis(
        "stale_cycles",
        [25u64, 50, 100, 200, 400, 1600]
            .into_iter()
            .map(|stale| {
                AxisValue::new(stale.to_string(), move |mut c: SimConfig| {
                    c.stale_drop_cycles = stale;
                    c
                })
            })
            .collect(),
    )
    .seeds(scale.seeds)
    .build()
}

/// Ablation: zero-token acknowledgement elision under a coarse sharer
/// encoding and 2-byte/cycle links.
pub fn ablation_ack_elision_plan(scale: Scale) -> ExperimentPlan {
    let coarse = SharerEncoding::Coarse {
        cores_per_bit: (scale.cores / 4).max(2),
    };
    let base = scale.base(ProtocolKind::Patch, scale.cores);
    let protocol = base.protocol.clone().with_sharer_encoding(coarse);
    let base = base
        .with_protocol(protocol)
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
        .with_ops_per_core(scale.ops)
        .with_warmup(scale.warmup);
    Sweep::new(
        format!("Ablation: zero-token ack elision (PATCH, {coarse}, 2 B/cycle links)"),
        base,
    )
    .axis(
        "acks",
        vec![
            AxisValue::new("elided (PATCH)", |c| c),
            AxisValue::new("always (Dir-like)", |c| {
                let protocol = c.protocol.clone().without_ack_elision();
                c.with_protocol(protocol)
            }),
        ],
    )
    .seeds(scale.seeds)
    .build()
}

/// Extension study: limited-pointer directories (Dir-i-B) alongside the
/// paper's coarse-vector sweep.
pub fn ablation_limited_pointer_plan(scale: Scale) -> ExperimentPlan {
    let cores = scale.cores;
    let (warmup, ops) = microbench_schedule(cores);
    let base = scale
        .base(ProtocolKind::Directory, cores)
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
        .with_workload(WorkloadSpec::microbenchmark())
        .with_ops_per_core(ops)
        .with_warmup(warmup);
    let encodings = [
        SharerEncoding::FullMap,
        SharerEncoding::LimitedPointer { pointers: 4 },
        SharerEncoding::LimitedPointer { pointers: 1 },
        SharerEncoding::Coarse {
            cores_per_bit: (cores / 4).max(2),
        },
    ];
    Sweep::new(
        format!("Extension: limited-pointer directories ({cores} cores, 2 B/cycle links)"),
        base,
    )
    .axis("config", inexact_protocol_axis())
    .axis(
        "encoding",
        encodings
            .into_iter()
            .map(|encoding| {
                AxisValue::new(encoding.to_string(), move |c: SimConfig| {
                    let protocol = c.protocol.clone().with_sharer_encoding(encoding);
                    c.with_protocol(protocol)
                })
            })
            .collect(),
    )
    .seeds(scale.seeds)
    .build()
}

// ---------------------------------------------------------------------------
// Plan registry and shared column sets.
// ---------------------------------------------------------------------------

/// Every named plan `runplan` can execute, with a one-line description
/// (shown by `runplan --help` and the bare `runplan` plan listing).
pub const PLAN_INFO: [(&str, &str); 16] = [
    (
        "fig4",
        "Figure 4 runtime grid: 5 workloads x 6 protocol configs",
    ),
    (
        "fig5",
        "Figure 5 traffic grid: fig4's sweep with per-class columns",
    ),
    ("fig6", "Figure 6 bandwidth-adaptivity sweep on ocean"),
    ("fig7", "Figure 7 bandwidth-adaptivity sweep on jbb"),
    (
        "fig8",
        "Figure 8 scalability: 4-512 cores on 2 B/cycle links",
    ),
    ("fig9", "Figure 9 runtime vs sharer-encoding coarseness"),
    ("fig10", "Figure 10 traffic vs sharer-encoding coarseness"),
    (
        "fabric",
        "Cross-fabric scalability: cores x 5 topologies x 3 configs",
    ),
    (
        "faults",
        "Fault-injection robustness: fault mix x protocol x fabric, oracles armed",
    ),
    (
        "service",
        "Service-shaped traffic: key skew x arrival burstiness x protocol",
    ),
    (
        "saturation",
        "Open-loop saturation: offered load x protocol x fabric, drops + sojourn",
    ),
    (
        "tenure_timeout",
        "Ablation: fixed vs adaptive tenure timeouts",
    ),
    (
        "deact_window",
        "Ablation: post-deactivation ignore window on/off",
    ),
    ("stale_drop", "Ablation: best-effort staleness bound sweep"),
    ("ack_elision", "Ablation: zero-token ack elision on/off"),
    (
        "limited_pointer",
        "Extension: limited-pointer directories (Dir-i-B)",
    ),
];

/// Every named plan `runplan` can execute.
pub const PLAN_NAMES: [&str; PLAN_INFO.len()] = {
    let mut names = [""; PLAN_INFO.len()];
    let mut i = 0;
    while i < PLAN_INFO.len() {
        names[i] = PLAN_INFO[i].0;
        i += 1;
    }
    names
};

/// Builds a registered plan by name (see [`PLAN_NAMES`]).
pub fn plan_by_name(name: &str, scale: Scale) -> Option<ExperimentPlan> {
    match name {
        "fig4" | "fig5" => Some(figure4_plan(scale)),
        "fig6" => Some(bandwidth_plan(scale, presets::ocean())),
        "fig7" => Some(bandwidth_plan(scale, presets::jbb())),
        "fig8" => Some(scalability_plan(scale)),
        "fig9" => Some(inexact_runtime_plan(scale)),
        "fig10" => Some(inexact_traffic_plan(scale)),
        "fabric" => Some(cross_fabric_plan(scale)),
        "faults" => Some(faults_plan(scale)),
        "service" => Some(service_plan(scale)),
        "saturation" => Some(saturation_plan(scale)),
        "tenure_timeout" => Some(ablation_tenure_timeout_plan(scale)),
        "deact_window" => Some(ablation_deact_window_plan(scale)),
        "stale_drop" => Some(ablation_stale_drop_plan(scale)),
        "ack_elision" => Some(ablation_ack_elision_plan(scale)),
        "limited_pointer" => Some(ablation_limited_pointer_plan(scale)),
        _ => None,
    }
}

/// The default measurement columns: runtime and bytes/miss with 95% CIs,
/// pooled miss-latency percentiles, and best-effort drops.
pub fn with_standard_columns(table: Table) -> Table {
    table
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_ci_column("bytes_per_miss", 1, |cell| cell.summary.bytes_per_miss)
        .with_column("lat_p50", 0, |cell| {
            cell.summary.miss_latency_percentiles.p50 as f64
        })
        .with_column("lat_p95", 0, |cell| {
            cell.summary.miss_latency_percentiles.p95 as f64
        })
        .with_column("lat_p99", 0, |cell| {
            cell.summary.miss_latency_percentiles.p99 as f64
        })
        .with_column("drops", 0, |cell| cell.summary.dropped_packets)
}

/// The `saturation` plan's column set: offered vs achieved rate (both
/// per kilocycle), drop percentage, and pooled arrival→completion
/// sojourn percentiles, plus the closed-loop miss-latency p95 for the
/// flat-vs-exploding contrast and the backlog high-water mark.
pub fn with_saturation_columns(table: Table) -> Table {
    table
        .with_column("offered_per_kc", 3, |cell| {
            cell.summary
                .open_loop
                .unwrap_or_default()
                .offered_per_kcycle
        })
        .with_column("goodput_per_kc", 3, |cell| {
            cell.summary
                .open_loop
                .unwrap_or_default()
                .goodput_per_kcycle
        })
        .with_column("drop_pct", 2, |cell| {
            cell.summary.open_loop.unwrap_or_default().drop_pct
        })
        .with_column("soj_p50", 0, |cell| {
            cell.summary.open_loop.unwrap_or_default().sojourn.p50 as f64
        })
        .with_column("soj_p95", 0, |cell| {
            cell.summary.open_loop.unwrap_or_default().sojourn.p95 as f64
        })
        .with_column("soj_p99", 0, |cell| {
            cell.summary.open_loop.unwrap_or_default().sojourn.p99 as f64
        })
        .with_column("lat_p95", 0, |cell| {
            cell.summary.miss_latency_percentiles.p95 as f64
        })
        .with_column("backlog_hwm", 0, |cell| {
            cell.summary.open_loop.unwrap_or_default().backlog_hwm as f64
        })
}

/// The miss-lifecycle span columns (`--spans`): mean cycles a miss
/// spends in each phase — open-loop queue wait, network (issue to first
/// response), home/ordering (first response to the ordering decision),
/// and token wait (ordering to completion). The three on-miss phases
/// partition the mean miss latency exactly; cells without span data
/// report zeros.
pub fn with_span_columns(table: Table) -> Table {
    let spans = |cell: &patchsim::exp::CellResult| cell.summary.spans.unwrap_or_default();
    table
        .with_column("span_queue", 1, move |cell| spans(cell).queue_wait_mean)
        .with_column("span_net", 1, move |cell| spans(cell).network_mean)
        .with_column("span_home", 1, move |cell| spans(cell).home_mean)
        .with_column("span_token", 1, move |cell| spans(cell).token_wait_mean)
}

/// One bytes-per-miss column per traffic class, in [`TrafficClass::ALL`]
/// order (the paper's Figure 5/10 breakdowns).
pub fn with_traffic_class_columns(mut table: Table) -> Table {
    for class in TrafficClass::ALL {
        table = table.with_column(class.label(), 1, move |cell| cell.summary.class_mean(class));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_grid_is_five_by_six() {
        let plan = figure4_plan(Scale::quick());
        assert_eq!(plan.axis_names(), &["workload", "config"]);
        assert_eq!(plan.len(), 30);
        assert_eq!(plan.cells()[0].labels[1], "Directory");
        assert_eq!(plan.cells()[5].labels[1], "TokenB");
    }

    #[test]
    fn bandwidth_plan_matches_paper_points() {
        let plan = bandwidth_plan(Scale::quick(), presets::ocean());
        assert_eq!(plan.len(), BANDWIDTH_SWEEP.len() * 3);
        // 300 bytes/kcycle = 0.3 bytes/cycle.
        assert_eq!(
            plan.cells()[0].config.bandwidth,
            LinkBandwidth::BytesPerCycle(0.3)
        );
        assert_eq!(plan.cells()[0].labels, vec!["300", "Directory"]);
    }

    #[test]
    fn scalability_plan_resizes_tokens_with_cores() {
        let plan = scalability_plan(Scale::quick());
        for cell in plan.cells() {
            let cores: u16 = cell.labels[0].parse().unwrap();
            assert_eq!(cell.config.protocol.num_nodes, cores);
            assert_eq!(cell.config.protocol.total_tokens, cores as u32);
            let (warmup, ops) = microbench_schedule(cores);
            assert_eq!(cell.config.warmup_ops_per_core, warmup);
            assert_eq!(cell.config.ops_per_core, ops);
        }
    }

    #[test]
    fn coarseness_is_clamped_to_the_core_count() {
        let plan = inexact_traffic_plan(Scale::quick()); // 16- and 32-core systems
        assert!(plan
            .cells()
            .iter()
            .all(|cell| match cell.config.protocol.sharer_encoding {
                SharerEncoding::Coarse { cores_per_bit } =>
                    cores_per_bit <= cell.config.protocol.num_nodes,
                _ => true,
            }));
        // 16 cores keep K ∈ {1, 4, 16}; 32 cores keep {1, 4, 16}.
        let per_16: Vec<_> = plan
            .cells()
            .iter()
            .filter(|c| c.labels[0] == "16" && c.labels[1] == "PATCH")
            .map(|c| c.labels[2].clone())
            .collect();
        assert_eq!(per_16, vec!["1", "4", "16"]);
    }

    #[test]
    fn inexact_runtime_plan_sweeps_both_bandwidths() {
        let plan = inexact_runtime_plan(Scale::quick());
        assert_eq!(plan.axis_names(), &["cores", "config", "links", "K"]);
        assert!(plan.cells().iter().any(|c| c.labels[2] == "inf"));
        assert!(plan.cells().iter().any(|c| c.labels[2] == "2B/c"));
    }

    #[test]
    fn cross_fabric_plan_sweeps_every_fabric() {
        let plan = cross_fabric_plan(Scale::quick());
        assert_eq!(plan.axis_names(), &["cores", "fabric", "config"]);
        assert_eq!(plan.len(), 2 * FabricKind::ALL.len() * 3);
        for kind in FabricKind::ALL {
            let label = kind.label();
            let cell = plan
                .cells()
                .iter()
                .find(|c| c.labels[1] == label)
                .unwrap_or_else(|| panic!("no cell for fabric {label}"));
            assert_eq!(cell.config.protocol.fabric, kind);
        }
    }

    #[test]
    fn fabric_flag_threads_into_plan_bases() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        let (parsed, _) = args(&["--quick", "--fabric", "mesh"]).unwrap();
        assert_eq!(parsed.scale.fabric, FabricKind::Mesh2D);
        let plan = figure4_plan(parsed.scale.clone());
        assert!(plan
            .cells()
            .iter()
            .all(|c| c.config.protocol.fabric == FabricKind::Mesh2D));
        // Core-resizing axes preserve the fabric choice.
        let plan = scalability_plan(parsed.scale);
        assert!(plan
            .cells()
            .iter()
            .all(|c| c.config.protocol.fabric == FabricKind::Mesh2D));
        assert!(args(&["--fabric", "warp"]).is_err());
        assert!(args(&["--fabric"]).is_err());
        let (hier, _) = args(&["--fabric", "hier:4"]).unwrap();
        assert_eq!(
            hier.scale.fabric,
            FabricKind::Hierarchical { cluster: Some(4) }
        );
    }

    #[test]
    fn every_registered_plan_builds() {
        let scale = Scale::quick();
        for name in PLAN_NAMES {
            let plan = plan_by_name(name, scale.clone()).expect(name);
            assert!(!plan.is_empty(), "{name} built an empty plan");
        }
        assert!(plan_by_name("nope", scale).is_none());
        // The description table and the name registry stay in sync.
        assert_eq!(PLAN_INFO.map(|(name, _)| name), PLAN_NAMES);
        assert!(PLAN_INFO.iter().all(|(_, desc)| !desc.is_empty()));
    }

    #[test]
    fn faults_plan_arms_oracles_on_every_cell() {
        let plan = faults_plan(Scale::quick());
        assert_eq!(plan.axis_names(), &["config", "faults", "fabric"]);
        assert_eq!(plan.len(), 3 * FaultSpec::PRESETS.len() * 2);
        for cell in plan.cells() {
            assert_eq!(cell.config.check, patchsim::CheckLevel::Assert);
            assert_eq!(cell.config.liveness_horizon, Some(FAULT_LIVENESS_HORIZON));
            // The faults axis label round-trips through the parser.
            assert_eq!(
                cell.config.faults,
                FaultSpec::parse(&cell.labels[1]).unwrap()
            );
        }
        assert!(plan.cells().iter().any(|c| c.config.faults.is_none()));
        assert!(plan.cells().iter().any(|c| !c.config.faults.is_none()));
    }

    #[test]
    fn faults_flag_threads_into_plan_bases() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        let (parsed, _) = args(&["--quick", "--faults", "delay:0.02:200+dup:0.01"]).unwrap();
        assert_eq!(parsed.scale.faults.label(), "delay:0.02:200+dup:0.01");
        let plan = figure4_plan(parsed.scale.clone());
        assert!(plan
            .cells()
            .iter()
            .all(|c| c.config.faults == parsed.scale.faults));
        // Defaults stay fault-free; malformed specs are rejected.
        let (default, _) = args(&["--quick"]).unwrap();
        assert!(default.scale.faults.is_none());
        assert!(args(&["--faults"]).is_err());
        assert!(args(&["--faults", "lava"]).is_err());
        assert!(args(&["--faults", "delay:2.0:10"]).is_err());
    }

    #[test]
    fn workload_flag_threads_into_plan_bases() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        let (parsed, _) = args(&["--quick", "--workload", "svc-zipf"]).unwrap();
        assert_eq!(parsed.scale.workload.as_ref().unwrap().name(), "svc-zipf");
        // Plans without a workload axis inherit the override...
        let plan = faults_plan(parsed.scale.clone());
        assert!(plan
            .cells()
            .iter()
            .all(|c| c.config.workload.name() == "svc-zipf"));
        // ...and plans with one override it per cell.
        let plan = figure4_plan(parsed.scale);
        assert!(plan
            .cells()
            .iter()
            .all(|c| c.config.workload.name() != "svc-zipf"));
        assert!(args(&["--workload"]).is_err());
        assert!(args(&["--workload", "nonsense"]).is_err());
        assert!(args(&["--workload", "trace:/definitely/missing.ptrc"]).is_err());
        let (rec, _) = args(&["--record-trace", "t.ptrc"]).unwrap();
        assert_eq!(rec.record.as_deref(), Some(std::path::Path::new("t.ptrc")));
        assert!(args(&["--record-trace"]).is_err());
    }

    #[test]
    fn open_workload_flag_parses_and_rejects() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        let (parsed, _) = args(&["--quick", "--workload", "open:poisson:80,cap=32"]).unwrap();
        let workload = parsed.scale.workload.as_ref().unwrap();
        assert_eq!(workload.name(), "open:poisson:80,cap=32");
        assert!(matches!(workload, WorkloadSpec::OpenLoop(_)));
        assert!(args(&["--workload", "open:poisson:0"]).is_err());
        assert!(args(&["--workload", "open:warp:5"]).is_err());
        assert!(args(&["--workload", "open:poisson:80,cap=0"]).is_err());
    }

    #[test]
    fn saturation_plan_sweeps_load_and_fabric() {
        let plan = saturation_plan(Scale::quick());
        assert_eq!(plan.axis_names(), &["load", "config", "fabric"]);
        assert_eq!(plan.len(), SATURATION_PERIODS.len() * 3 * 2);
        for cell in plan.cells() {
            let WorkloadSpec::OpenLoop(profile) = &cell.config.workload else {
                panic!("saturation cell {:?} is not open-loop", cell.labels);
            };
            let period: u64 = cell.labels[0].parse().unwrap();
            assert_eq!(profile.process.period(), period);
        }
    }

    #[test]
    fn shards_partition_a_plan_exactly() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        // Malformed shard specs are rejected outright.
        assert!(args(&["--shard"]).is_err());
        assert!(args(&["--shard", "3"]).is_err());
        assert!(args(&["--shard", "0/4"]).is_err());
        assert!(args(&["--shard", "5/4"]).is_err());
        assert!(args(&["--shard", "1/0"]).is_err());
        assert!(args(&["--shard", "a/b"]).is_err());

        // Every cell of the full plan lands in exactly one of N shards.
        let scale = Scale::quick();
        let full: Vec<u64> = figure4_plan(scale.clone())
            .cells()
            .iter()
            .map(|c| cell_key(&c.config))
            .collect();
        let n = 3;
        let mut sharded = Vec::new();
        for k in 1..=n {
            let (parsed, _) = args(&["--quick", "--shard", &format!("{k}/{n}")]).unwrap();
            assert_eq!(parsed.shard, Some((k, n)));
            let mut plan = figure4_plan(scale.clone());
            plan.retain(|cell| cell_key(&cell.config) % n == k - 1);
            sharded.extend(plan.cells().iter().map(|c| cell_key(&c.config)));
        }
        let mut full_sorted = full.clone();
        full_sorted.sort_unstable();
        sharded.sort_unstable();
        assert_eq!(sharded, full_sorted);
    }

    #[test]
    fn strict_parser_rejects_malformed_input() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert!(args(&["--seeds"]).is_err());
        assert!(args(&["--seeds", "zero"]).is_err());
        assert!(args(&["--seeds", "0"]).is_err());
        assert!(args(&["--threads", "-3"]).is_err());
        assert!(args(&["--format", "yaml"]).is_err());
        assert!(args(&["--frobnicate"]).is_err());
        assert!(args(&["a", "b"]).is_err());

        let (ok, positional) = args(&[
            "--quick",
            "--seeds",
            "3",
            "--threads",
            "2",
            "--format",
            "csv",
            "--out",
            "x.csv",
            "fig4",
        ])
        .unwrap();
        assert_eq!(ok.scale.cores, Scale::quick().cores);
        assert_eq!(ok.scale.seeds, 3);
        assert_eq!(ok.threads, Some(2));
        assert_eq!(ok.format, Format::Csv);
        assert_eq!(ok.out.as_deref(), Some(std::path::Path::new("x.csv")));
        assert_eq!(positional.as_deref(), Some("fig4"));
    }

    #[test]
    fn telemetry_flags_parse_and_arm_the_plan() {
        let args = |list: &[&str]| {
            BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        let (parsed, _) = args(&[
            "--quick",
            "--metrics",
            "m.jsonl",
            "--metrics-every",
            "500",
            "--spans",
            "--flight-recorder",
            "fdr",
            "--progress",
        ])
        .unwrap();
        assert_eq!(
            parsed.metrics.as_deref(),
            Some(std::path::Path::new("m.jsonl"))
        );
        assert_eq!(parsed.metrics_every, Some(500));
        assert!(parsed.spans && parsed.progress);
        let plan = parsed.run_plan_armed(figure4_plan(parsed.scale.clone()));
        // Metrics arm only the first cell; spans and the recorder arm all.
        let first = &plan.cells()[0].config.telemetry;
        assert_eq!(
            first.metrics.as_deref(),
            Some(std::path::Path::new("m.jsonl"))
        );
        assert_eq!(first.metrics_every, 500);
        assert!(plan.cells().iter().all(|c| c.config.telemetry.spans));
        assert!(plan
            .cells()
            .iter()
            .all(|c| c.config.telemetry.flight_recorder.is_some()));
        assert!(plan
            .cells()
            .iter()
            .skip(1)
            .all(|c| c.config.telemetry.metrics.is_none()));
        // Malformed telemetry flags are rejected.
        assert!(args(&["--metrics"]).is_err());
        assert!(args(&["--metrics-every", "100"]).is_err()); // needs --metrics
        assert!(args(&["--metrics", "m", "--metrics-every", "0"]).is_err());
        assert!(args(&["--flight-recorder"]).is_err());
        // Defaults leave telemetry off entirely.
        let (off, _) = args(&["--quick"]).unwrap();
        assert!(off.metrics.is_none() && !off.spans && !off.progress);
        let plan = off.run_plan_armed(figure4_plan(off.scale.clone()));
        assert!(plan.cells().iter().all(|c| !c.config.telemetry.any()));
    }

    #[test]
    fn standard_columns_attach_to_a_real_table() {
        let mut scale = Scale::quick();
        scale.cores = 4;
        scale.ops = 40;
        scale.warmup = 0;
        let plan = ablation_deact_window_plan(scale);
        let table = with_standard_columns(Runner::serial().run(&plan));
        assert_eq!(table.columns().len(), 6);
        assert!(table.value(0, 0).primary() > 0.0);
    }
}
