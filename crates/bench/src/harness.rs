//! A minimal, dependency-free benchmark harness with a criterion-compatible
//! surface.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the real `criterion` crate cannot be vendored. This module
//! implements the slice of its API the `benches/` targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`](crate::criterion_group)/
//! [`criterion_main!`](crate::criterion_main) macros — timing each benchmark
//! with [`std::time::Instant`] and printing a one-line summary
//! (min / median / mean over the sample set). Swapping back to the real
//! criterion is a one-line import change in each bench file.

use std::hint::black_box;
use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Batch sizing hint, accepted for criterion compatibility.
///
/// The harness always materialises one setup value per measured iteration,
/// so the variants are behaviourally identical here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state (criterion's default choice in this repo).
    #[default]
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
}

/// Top-level benchmark driver, analogous to `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            name.as_ref(),
            self.sample_size.unwrap_or(DEFAULT_SAMPLE_SIZE),
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLE_SIZE),
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group (reported as `group/name`).
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finishes the group (no-op; provided for criterion compatibility).
    pub fn finish(self) {}
}

/// Per-benchmark measurement context handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
    /// Calibrated inner-loop count for [`Bencher::iter`], fixed on first
    /// use so every sample of a benchmark runs the same batch size.
    iters: Option<u64>,
}

/// Target duration of one timed sample, in nanoseconds. Batching fast
/// routines up to this long keeps `Instant` read overhead and clock
/// resolution from dominating the measurement.
const TARGET_SAMPLE_NS: u128 = 1_000_000;

impl Bencher {
    /// Times `routine`, batching enough iterations per sample (~1 ms) that
    /// timer overhead is negligible; records mean time per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = match self.iters {
            Some(n) => n,
            None => {
                let t0 = Instant::now();
                black_box(routine());
                let once_ns = t0.elapsed().as_nanos().max(1);
                let n = (TARGET_SAMPLE_NS / once_ns).max(1) as u64;
                self.iters = Some(n);
                n
            }
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples_ns
            .push(start.elapsed().as_nanos() / iters as u128);
    }

    /// Times `routine` on a fresh value from `setup`, excluding setup time.
    ///
    /// Unlike [`Bencher::iter`] this runs a single invocation per sample:
    /// each iteration would need its own setup value, and the batched-setup
    /// routines in this repo are microseconds-scale where one `Instant`
    /// read is already negligible.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples_ns.push(start.elapsed().as_nanos());
    }
}

fn run_one<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warmup pass, then the timed samples.
    f(&mut Bencher::default());
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    let mut ns = b.samples_ns;
    if ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    println!(
        "{name:<48} min {:>12} ns   median {:>12} ns   mean {:>12} ns   ({} samples)",
        min,
        median,
        mean,
        ns.len()
    );
}

/// Declares a benchmark group function from a list of benchmark functions.
///
/// Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` that runs each group in order.
///
/// Mirrors `criterion::criterion_main!`. Command-line arguments (cargo
/// bench passes `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
