//! Figure 4: normalized runtime of the six protocol configurations on the
//! five workloads (64 cores, bandwidth-rich 16 B/cycle links).
//!
//! The paper's headline shape: PATCH-None ≈ DIRECTORY; PATCH-All ≈ TokenB
//! and ~14% faster than DIRECTORY on average (22% oltp, 19% apache);
//! PATCH-Owner roughly halves PATCH-All's speedup; BcastIfShared lands
//! within a few percent of PATCH-All.
//!
//! `cargo run --release -p patchsim-bench --bin fig4_runtime [--quick] [--seeds N]`

use patchsim::{run_many, summarize};
use patchsim_bench::{figure4_configs, figure4_workloads, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Figure 4: normalized runtime ({} cores, {} ops/core, {} seed(s))\n",
        scale.cores, scale.ops, scale.seeds
    );
    println!(
        "{:<10} {:>10} {:>11} {:>12} {:>14} {:>10} {:>8}",
        "workload",
        "Directory",
        "PATCH-None",
        "PATCH-Owner",
        "BcastIfShared",
        "PATCH-All",
        "TokenB"
    );

    let mut avg_speedup = Vec::new();
    for workload in figure4_workloads() {
        let mut row = Vec::new();
        let mut baseline = None;
        for (_, config) in figure4_configs(scale, &workload) {
            let summary = summarize(&run_many(&config, scale.seeds));
            let base = *baseline.get_or_insert(summary.runtime.mean);
            row.push(summary.runtime.mean / base);
        }
        println!(
            "{:<10} {:>10.3} {:>11.3} {:>12.3} {:>14.3} {:>10.3} {:>8.3}",
            workload.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5]
        );
        avg_speedup.push(1.0 - row[4]);
    }
    let mean_speedup = avg_speedup.iter().sum::<f64>() / avg_speedup.len() as f64;
    println!(
        "\nPATCH-All speedup vs DIRECTORY: mean {:.1}% (paper: ~14% avg, 22% oltp, 19% apache)",
        mean_speedup * 100.0
    );
}
