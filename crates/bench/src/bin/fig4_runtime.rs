//! Figure 4: normalized runtime of the six protocol configurations on the
//! five workloads (64 cores, bandwidth-rich 16 B/cycle links).
//!
//! The paper's headline shape: PATCH-None ≈ DIRECTORY; PATCH-All ≈ TokenB
//! and ~14% faster than DIRECTORY on average (22% oltp, 19% apache);
//! PATCH-Owner roughly halves PATCH-All's speedup; BcastIfShared lands
//! within a few percent of PATCH-All.
//!
//! `cargo run --release -p patchsim-bench --bin fig4_runtime [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{figure4_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig4_runtime",
        "Figure 4: normalized runtime, 5 workloads x 6 protocol configurations",
    );
    let table = args
        .run_plan(figure4_plan(args.scale.clone()))
        .with_title("Figure 4: normalized runtime")
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
            cell.summary.runtime.mean
        })
        .with_note(
            "norm_runtime is normalized to the Directory row of the same workload \
             (< 1.0 is faster than Directory)",
        )
        .with_note(
            "paper shape: PATCH-None ~ Directory; PATCH-All ~ TokenB, ~14% faster than \
             Directory on average (22% oltp, 19% apache)",
        );
    args.finish(&table);
}
