//! Ablation: the post-deactivation direct-request ignore window
//! (paper §5.2, DESIGN.md §7).
//!
//! After deactivating, a PATCH processor keeps ignoring direct requests
//! for one more timeout window so racing direct requests cannot scatter
//! tokens while the home is steering them to the next active requester.
//! This ablation removes the window and measures the extra token churn.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_deact_window [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{ablation_deact_window_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "ablation_deact_window",
        "Ablation: post-deactivation direct-request ignore window (PATCH-All)",
    );
    let table = args
        .run_plan(ablation_deact_window_plan(args.scale.clone()))
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_column("tenure_timeouts", 0, |cell| {
            cell.summary
                .runs
                .iter()
                .map(|r| r.counters.tenure_timeouts)
                .sum::<u64>() as f64
        })
        .with_column("direct_ignored", 0, |cell| {
            cell.summary
                .runs
                .iter()
                .map(|r| r.counters.direct_ignored)
                .sum::<u64>() as f64
        })
        .with_ci_column("bytes_per_miss", 1, |cell| cell.summary.bytes_per_miss)
        .with_note(
            "disabling the window lets racing direct requests scatter tokens the home \
             is steering, inflating tenure timeouts and traffic",
        );
    args.finish(&table);
}
