//! Ablation: the post-deactivation direct-request ignore window
//! (paper §5.2, DESIGN.md §7).
//!
//! After deactivating, a PATCH processor keeps ignoring direct requests
//! for one more timeout window so racing direct requests cannot scatter
//! tokens while the home is steering them to the next active requester.
//! This ablation removes the window and measures the extra token churn.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_deact_window [--quick]`

use patchsim::{run_many, summarize, PredictorChoice, ProtocolKind, SimConfig, WorkloadSpec};
use patchsim_bench::Scale;
use patchsim_protocol::ProtocolConfig;

fn main() {
    let scale = Scale::from_args();
    let workload = WorkloadSpec::Microbenchmark {
        table_blocks: 128,
        write_frac: 0.5,
        think_mean: 3,
    };
    println!("Ablation: post-deactivation ignore window (PATCH-All, hot table)\n");
    println!(
        "{:<14} {:>12} {:>16} {:>16} {:>14}",
        "window", "runtime", "tenure timeouts", "direct ignored", "bytes/miss"
    );
    for (name, enabled) in [("enabled", true), ("disabled", false)] {
        let mut protocol = ProtocolConfig::new(ProtocolKind::Patch, scale.cores)
            .with_predictor(PredictorChoice::All);
        if !enabled {
            protocol = protocol.without_deact_window();
        }
        let config = SimConfig::new(ProtocolKind::Patch, scale.cores)
            .with_protocol(protocol)
            .with_workload(workload.clone())
            .with_ops_per_core(scale.ops)
            .with_warmup(scale.warmup);
        let summary = summarize(&run_many(&config, scale.seeds));
        let timeouts: u64 = summary
            .runs
            .iter()
            .map(|r| r.counters.tenure_timeouts)
            .sum();
        let ignored: u64 = summary.runs.iter().map(|r| r.counters.direct_ignored).sum();
        println!(
            "{:<14} {:>12.0} {:>16} {:>16} {:>14.1}",
            name, summary.runtime.mean, timeouts, ignored, summary.bytes_per_miss.mean
        );
    }
}
