//! Simulator-throughput benchmark: a pinned mid-size configuration timed
//! end to end, reported as events per second.
//!
//! Every figure in the paper is an average over many full-system runs, so
//! events/sec directly bounds how many seeds, node counts, and sweep cells
//! the experiment harness can afford. This binary runs a fixed 16-node
//! PATCH configuration over a fixed seed set and writes the measured
//! throughput (plus a determinism hash of every run's results) to a JSON
//! file, giving CI and the perf trajectory a stable number to track.
//!
//! Usage: `perf_baseline [--threads N] [--seeds N] [--quick]
//! [--fabric F] [--record-trace PATH] [--replay-trace PATH] [--profile]
//! [--out PATH]`
//!
//! `--profile` turns on the simulator's per-event-class self-profiling
//! (wall time and event count per class, summed over all replications)
//! and writes the breakdown into the output JSON as a `"profile"`
//! array. Profiling never touches simulation state, so the result hash
//! is identical with or without it — which CI's perf-smoke job checks,
//! alongside recording the telemetry-on overhead.
//!
//! `--fabric` swaps the interconnect topology (default `torus`); CI's
//! perf-smoke job records a crossbar row alongside the torus row into
//! `BENCH_4.json` so the fabric subsystem's throughput is tracked too.
//! `--record-trace` writes the first replication's access stream to a
//! `.ptrc` trace; `--replay-trace` replays one (replay skips workload
//! generation, so CI's perf-smoke job records its events/sec next to
//! generate-mode into `BENCH_5.json` — the gap prices the generators).
//!
//! The result hash folds each run's `RunResult` (runtime, traffic,
//! counters, miss histogram) with the deterministic Fx hasher; it must be
//! identical for any `--threads` value, which CI checks by diffing the
//! hash between `--threads 1` and `--threads 4` — and identical between
//! a recorded run and its replay, which CI also checks.

use std::hash::Hasher;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use patchsim::{
    FabricKind, PredictorChoice, ProtocolKind, RunResult, SimConfig, TraceReader, WorkloadSpec,
};
use patchsim_kernel::collections::FxHasher;
use patchsim_kernel::replicate_seed;

/// The pinned base seed; replications derive from it with `replicate_seed`.
const BASE_SEED: u64 = 0xB_0A7;

/// Pre-change reference throughput for the default configuration
/// (`--seeds 3`, `--threads 1`, full size), measured on the PR-3 baseline
/// tree (global `BinaryHeap` queue, heap-allocated `DestSet`, SipHash
/// protocol tables, per-event `Outbox`/`Vec` allocations): mean of two
/// runs on the development machine. Comparable numbers only come from
/// the same machine, so the emitted speedup is indicative, not portable.
const PRE_CHANGE_EVENTS_PER_SEC: f64 = 4_008_054.0;

/// Default output path, matching the perf-trajectory naming scheme.
const DEFAULT_OUT: &str = "BENCH_3.json";

/// Measured operations per core for the pinned configuration.
const fn pinned_ops(quick: bool) -> u64 {
    if quick {
        500
    } else {
        4_000
    }
}

/// The pinned benchmark configuration: 16 nodes, PATCH with the
/// broadcast-if-shared predictor (exercises multicast fan-out, the
/// predictor, and best-effort traffic), on the selected fabric
/// (paper-default torus unless `--fabric` says otherwise).
fn pinned_config(quick: bool, fabric: FabricKind) -> SimConfig {
    let ops = pinned_ops(quick);
    SimConfig::new(ProtocolKind::Patch, 16)
        .with_fabric(fabric)
        .with_predictor(PredictorChoice::BroadcastIfShared)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 4_096,
            write_frac: 0.3,
            think_mean: 10,
        })
        .with_ops_per_core(ops)
        .with_warmup(ops / 4)
        .with_seed(BASE_SEED)
}

/// Runs `configs` on `threads` workers, returning results in input order.
///
/// Deliberately not `exp::Runner`: the runner consumes an
/// `ExperimentPlan` and returns a summarized `Table`, but this benchmark
/// needs the raw per-run `RunResult`s to fold into the determinism hash.
/// The worker-pool shape and `replicate_seed` derivation match the
/// runner's exactly, so `--threads N` is bit-identical to serial here for
/// the same reason it is there.
fn execute(configs: &[SimConfig], threads: usize) -> Vec<RunResult> {
    let threads = threads.min(configs.len()).max(1);
    if threads == 1 {
        return configs.iter().map(patchsim::run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = patchsim::run(&configs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("worker ran"))
        .collect()
}

/// Parsed flags. Not `BenchArgs`: this binary's contract differs from
/// the figure binaries' on purpose — the pinned defaults (`--seeds 3`,
/// `--threads 1`, a fixed `--out` path) define the recorded baseline,
/// and output is raw JSON rather than an emitted `Table`, so the shared
/// parser's defaults and `--format` flag do not apply. The help/exit
/// conventions (help → stdout, exit 0; malformed → message + usage,
/// exit 2) match `BenchArgs` exactly.
struct Args {
    threads: usize,
    seeds: u64,
    quick: bool,
    fabric: FabricKind,
    record: Option<PathBuf>,
    replay: Option<PathBuf>,
    profile: bool,
    out: PathBuf,
}

fn usage_text() -> String {
    format!(
        "Simulator-throughput benchmark on a pinned 16-node configuration.\n\n\
         Usage: perf_baseline [OPTIONS]\n\n\
         Options:\n  \
         --threads N    worker threads (default 1)\n  \
         --seeds N      replications of the pinned seed (default 3)\n  \
         --quick        shrink ops for a fast smoke run\n  \
         --fabric F     interconnect fabric: torus, mesh, ring, xbar, hier[:C]\n                 \
         (default torus; the recorded baseline is torus-only)\n  \
         --record-trace PATH\n                 \
         record the first replication's accesses to a .ptrc trace\n  \
         --replay-trace PATH\n                 \
         replay a recorded .ptrc trace instead of generating the\n                 \
         workload (requires --seeds 1; trace must be 16-node)\n  \
         --profile      record per-event-class wall time and event counts\n                 \
         into the output JSON (the result hash is unaffected)\n  \
         --out PATH     output JSON path (default {DEFAULT_OUT})\n  \
         -h, --help     print this help"
    )
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 1,
        seeds: 3,
        quick: false,
        fabric: FabricKind::Torus,
        record: None,
        replay: None,
        profile: false,
        out: PathBuf::from(DEFAULT_OUT),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "-h" || a == "--help") {
        println!("{}", usage_text());
        std::process::exit(0);
    }
    let positive = |flag: &str, v: Option<&String>| -> u64 {
        let v = v.unwrap_or_else(|| usage_error(&format!("{flag} requires a value")));
        match v.parse() {
            Ok(n) if n > 0 => n,
            Ok(_) => usage_error(&format!("{flag} must be at least 1")),
            Err(_) => usage_error(&format!("invalid {flag} value '{v}'")),
        }
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => args.threads = positive("--threads", it.next()) as usize,
            "--seeds" => args.seeds = positive("--seeds", it.next()),
            "--quick" => args.quick = true,
            "--fabric" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--fabric requires a value"));
                args.fabric = FabricKind::parse(v).unwrap_or_else(|| {
                    usage_error(&format!(
                        "invalid --fabric '{v}' (expected torus, mesh, ring, xbar, or hier[:C])"
                    ))
                });
            }
            "--record-trace" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--record-trace requires a value"));
                args.record = Some(PathBuf::from(v));
            }
            "--replay-trace" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--replay-trace requires a value"));
                args.replay = Some(PathBuf::from(v));
            }
            "--profile" => args.profile = true,
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out requires a value"));
                args.out = PathBuf::from(v);
            }
            other => usage_error(&format!("unknown argument '{other}'")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut base = pinned_config(args.quick, args.fabric);
    let mode = match &args.replay {
        Some(path) => {
            if args.seeds != 1 {
                usage_error("--replay-trace requires --seeds 1 (a trace replays one recorded run)");
            }
            let trace = TraceReader::read_path(path).unwrap_or_else(|e| {
                usage_error(&format!("cannot replay trace '{}': {e}", path.display()))
            });
            if trace.num_nodes != 16 {
                usage_error(&format!(
                    "trace '{}' was recorded on {} cores but perf_baseline is pinned to 16",
                    trace.label, trace.num_nodes
                ));
            }
            // Replay under the recording seed so every derived stream
            // matches the recorded run.
            base = base
                .with_seed(trace.seed)
                .with_workload(WorkloadSpec::trace(trace));
            "replay"
        }
        None => "generate",
    };
    let mut configs: Vec<SimConfig> = (0..args.seeds)
        .map(|i| base.clone().with_seed(replicate_seed(base.seed, i)))
        .collect();
    if let Some(path) = &args.record {
        configs[0].record_trace = Some(path.clone());
    }
    if args.profile {
        for config in &mut configs {
            config.telemetry.profile = true;
        }
    }

    // One untimed warmup run so first-touch page faults and lazy
    // allocations don't pollute the measurement. Recording stays off
    // here so the warmup doesn't clobber the measured run's trace, and
    // profiling stays off so the warmup doesn't pollute the breakdown.
    let mut warm = configs[0].clone();
    warm.record_trace = None;
    warm.telemetry.profile = false;
    let _ = patchsim::run(&warm);

    let wall = Instant::now();
    let results = execute(&configs, args.threads);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let total_events: u64 = results.iter().map(|r| r.events_processed).sum();
    let mut hasher = FxHasher::default();
    for r in &results {
        r.fold_into(&mut hasher);
    }
    let result_hash = hasher.finish();
    let events_per_sec = total_events as f64 / (wall_ms / 1e3);

    // The recorded pre-change baseline was measured with the default
    // full-size, single-threaded, 3-seed invocation on the torus; only
    // emit a speedup when this run is actually comparable to it.
    let comparable =
        !args.quick && args.threads == 1 && args.seeds == 3 && args.fabric == FabricKind::Torus;
    let baseline_fields = if comparable {
        format!(
            ",\n  \"pre_change_events_per_sec\": {:.1},\n  \"speedup_vs_pre_change\": {:.2}",
            PRE_CHANGE_EVENTS_PER_SEC,
            events_per_sec / PRE_CHANGE_EVENTS_PER_SEC,
        )
    } else {
        String::new()
    };
    // Per-event-class self-profiling breakdown, summed over all
    // replications. Profiling is observation-only, so this block's
    // presence never changes result_hash.
    let profile_fields = if args.profile {
        let mut total = patchsim::ProfileStats::default();
        for r in &results {
            if let Some(p) = &r.profile {
                total.merge(p);
            }
        }
        let rows: Vec<String> = patchsim::EventClass::ALL
            .into_iter()
            .map(|class| {
                let p = total.class(class);
                format!(
                    "    {{\"class\": \"{}\", \"events\": {}, \"wall_ms\": {:.3}}}",
                    class.label(),
                    p.events,
                    p.nanos as f64 / 1e6,
                )
            })
            .collect();
        format!(",\n  \"profile\": [\n{}\n  ]", rows.join(",\n"))
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"perf_baseline\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\n    \"nodes\": 16,\n    \
         \"protocol\": \"PATCH-BcastIfShared\",\n    \"fabric\": \"{}\",\n    \
         \"ops_per_core\": {},\n    \
         \"base_seed\": {},\n    \"seeds\": {},\n    \"quick\": {}\n  }},\n  \
         \"threads\": {},\n  \"total_events\": {},\n  \"wall_ms\": {:.3},\n  \
         \"events_per_sec\": {:.1},\n  \"result_hash\": \"{:#018x}\"{}{}\n}}\n",
        args.fabric.label(),
        pinned_ops(args.quick),
        base.seed,
        args.seeds,
        args.quick,
        args.threads,
        total_events,
        wall_ms,
        events_per_sec,
        result_hash,
        baseline_fields,
        profile_fields,
    );

    match std::fs::File::create(&args.out).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("wrote {}", args.out.display()),
        Err(e) => {
            eprintln!("error writing {}: {e}", args.out.display());
            std::process::exit(1);
        }
    }
    println!(
        "perf_baseline: {total_events} events in {wall_ms:.1} ms = {events_per_sec:.0} events/s \
         (threads={}, hash={result_hash:#018x})",
        args.threads
    );
    if total_events == 0 {
        eprintln!("error: benchmark produced zero events");
        std::process::exit(1);
    }
}
