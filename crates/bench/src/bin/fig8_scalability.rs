//! Figure 8: scalability of the microbenchmark from 4 to 512 cores with
//! 2-byte/cycle links.
//!
//! The paper's shape: PATCH-All-NonAdaptive beats DIRECTORY up to 64
//! cores, then collapses from 128 on; adaptive PATCH-All matches the
//! non-adaptive variant at small scale and DIRECTORY's scalability at
//! large scale, staying ahead of DIRECTORY up to ~256 cores.
//!
//! `cargo run --release -p patchsim-bench --bin fig8_scalability [--quick] [--seeds N]`

use patchsim::{run_many, summarize};
use patchsim_bench::{scalability_configs, Scale};

fn main() {
    let scale = Scale::from_args();
    let core_counts: &[u16] = if scale.cores <= 16 {
        &[4, 8, 16, 32, 64] // --quick
    } else {
        &[4, 8, 16, 32, 64, 128, 256, 512]
    };
    println!(
        "Figure 8: microbenchmark scalability (2 B/cycle links; runtime normalized to Directory)\n"
    );
    println!(
        "{:>8} {:>11} {:>14} {:>11}",
        "cores", "Directory", "PATCH-All-NA", "PATCH-All"
    );
    let _ = scale;
    for &cores in core_counts {
        // The schedule keeps total accesses at several multiples of the
        // 16k-entry table so caches reach steady state at every size.
        let ops = 0;
        let mut norm = Vec::new();
        let mut baseline = None;
        for (_, config) in scalability_configs(cores, ops) {
            let summary = summarize(&run_many(&config, scale.seeds));
            let base = *baseline.get_or_insert(summary.runtime.mean);
            norm.push(summary.runtime.mean / base);
        }
        println!(
            "{:>8} {:>11.3} {:>14.3} {:>11.3}",
            cores, norm[0], norm[1], norm[2]
        );
    }
}
