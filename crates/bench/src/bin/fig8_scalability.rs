//! Figure 8: scalability of the microbenchmark from 4 to 512 cores with
//! 2-byte/cycle links.
//!
//! The paper's shape: PATCH-All-NonAdaptive beats DIRECTORY up to 64
//! cores, then collapses from 128 on; adaptive PATCH-All matches the
//! non-adaptive variant at small scale and DIRECTORY's scalability at
//! large scale, staying ahead of DIRECTORY up to ~256 cores.
//!
//! `cargo run --release -p patchsim-bench --bin fig8_scalability [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{scalability_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig8_scalability",
        "Figure 8: microbenchmark scalability, 4-512 cores (normalized to Directory)",
    );
    let table = args
        .run_plan(scalability_plan(args.scale.clone()))
        .with_title("Figure 8: microbenchmark scalability (2 B/cycle links)")
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
            cell.summary.runtime.mean
        })
        .with_note("norm_runtime is normalized to Directory at the same core count")
        .with_note(
            "paper shape: PATCH-All-NA wins up to 64 cores then collapses; adaptive \
             PATCH-All stays ahead of Directory up to ~256 cores",
        );
    args.finish(&table);
}
