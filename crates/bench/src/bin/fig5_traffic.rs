//! Figure 5: interconnect traffic (bytes per miss, normalized to
//! DIRECTORY) broken down by message class, for the six configurations on
//! the five workloads.
//!
//! The paper's shape: PATCH-None ≈ DIRECTORY (+~2%, from non-silent clean
//! writebacks and activations); PATCH-Owner ≈ +20%; PATCH-All ≈ +145%;
//! BcastIfShared between Owner and All; TokenB comparable to PATCH-All.
//!
//! `cargo run --release -p patchsim-bench --bin fig5_traffic [--quick] [--seeds N]`

use patchsim::{run_many, summarize, TrafficClass};
use patchsim_bench::{figure4_configs, figure4_workloads, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Figure 5: traffic per miss by class, normalized to Directory ({} cores)\n",
        scale.cores
    );

    for workload in figure4_workloads() {
        println!("== {} ==", workload.name());
        println!(
            "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
            "config", "Data", "Ack", "DirReq", "IndReq", "Fwd", "Reissue", "Activ", "WB", "total"
        );
        let mut baseline = None;
        for (name, config) in figure4_configs(scale, &workload) {
            let summary = summarize(&run_many(&config, scale.seeds));
            let base = *baseline.get_or_insert(summary.bytes_per_miss.mean);
            print!("{name:<20}");
            for class in TrafficClass::ALL {
                print!(" {:>8.1}", summary.class_mean(class));
            }
            println!(" {:>7.2}", summary.bytes_per_miss.mean / base);
        }
        println!();
    }
    println!("(columns are bytes/miss; 'total' is normalized to the Directory row)");
}
