//! Figure 5: interconnect traffic (bytes per miss, normalized to
//! DIRECTORY) broken down by message class, for the six configurations on
//! the five workloads.
//!
//! The paper's shape: PATCH-None ≈ DIRECTORY (+~2%, from non-silent clean
//! writebacks and activations); PATCH-Owner ≈ +20%; PATCH-All ≈ +145%;
//! BcastIfShared between Owner and All; TokenB comparable to PATCH-All.
//!
//! `cargo run --release -p patchsim-bench --bin fig5_traffic [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{figure4_plan, with_traffic_class_columns, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig5_traffic",
        "Figure 5: traffic per miss by message class, normalized to Directory",
    );
    let table = with_traffic_class_columns(
        args.run_plan(figure4_plan(args.scale.clone()))
            .with_title("Figure 5: traffic per miss by class"),
    )
    .with_ci_column("bytes_per_miss", 1, |cell| cell.summary.bytes_per_miss)
    .with_normalized_column("norm_traffic", 2, "config", "Directory", |cell| {
        cell.summary.bytes_per_miss.mean
    })
    .with_note("class columns are bytes/miss; norm_traffic is normalized to the Directory row")
    .with_note(
        "paper shape: PATCH-None ~ Directory +2%; PATCH-Owner ~ +20%; PATCH-All ~ +145%; \
         TokenB comparable to PATCH-All",
    );
    args.finish(&table);
}
