//! Figure 9: runtime under inexact (coarse-vector) directory encodings,
//! for 64/128/256 cores, with bounded (2 B/cycle) and unbounded links,
//! normalized to each protocol's full-map configuration.
//!
//! The paper's shape: with unbounded links everything is flat; with
//! 2 B/cycle links DIRECTORY degrades badly as the encoding coarsens (up
//! to ~142% at 256 cores / single-bit), while PATCH grows only a few
//! percent.
//!
//! `cargo run --release -p patchsim-bench --bin fig9_inexact_runtime [--quick] [--seeds N]`

use patchsim::{run_many, summarize, LinkBandwidth, ProtocolKind};
use patchsim_bench::{coarseness_sweep, inexact_config, Scale};

fn main() {
    let scale = Scale::from_args();
    let sizes: &[u16] = if scale.cores <= 16 {
        &[16, 32] // --quick
    } else {
        &[64, 128, 256]
    };
    println!("Figure 9: runtime vs sharer-encoding coarseness (normalized to full map)\n");
    for &cores in sizes {
        let ops = 0; // use the steady-state microbench schedule
        for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
            print!("{:<10} {:>4} cores |", kind.label(), cores);
            for bandwidth in [LinkBandwidth::Unbounded, LinkBandwidth::BytesPerCycle(2.0)] {
                let mut baseline = None;
                let mut cells = Vec::new();
                for k in coarseness_sweep(cores) {
                    let config = inexact_config(kind, cores, k, bandwidth, ops);
                    let summary = summarize(&run_many(&config, scale.seeds));
                    let base = *baseline.get_or_insert(summary.runtime.mean);
                    cells.push(format!("K{}={:.2}", k, summary.runtime.mean / base));
                }
                let label = if bandwidth.is_unbounded() {
                    "inf"
                } else {
                    "2B/c"
                };
                print!("  [{label}] {}", cells.join(" "));
            }
            println!();
        }
        println!();
    }
}
