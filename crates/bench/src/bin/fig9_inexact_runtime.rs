//! Figure 9: runtime under inexact (coarse-vector) directory encodings,
//! for 64/128/256 cores, with bounded (2 B/cycle) and unbounded links,
//! normalized to each protocol's full-map configuration.
//!
//! The paper's shape: with unbounded links everything is flat; with
//! 2 B/cycle links DIRECTORY degrades badly as the encoding coarsens (up
//! to ~142% at 256 cores / single-bit), while PATCH grows only a few
//! percent.
//!
//! `cargo run --release -p patchsim-bench --bin fig9_inexact_runtime [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{inexact_runtime_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig9_inexact_runtime",
        "Figure 9: runtime vs sharer-encoding coarseness (normalized to full map)",
    );
    let table = args
        .run_plan(inexact_runtime_plan(args.scale.clone()))
        .with_title("Figure 9: runtime vs sharer-encoding coarseness")
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_normalized_column("norm_runtime", 3, "K", "1", |cell| {
            cell.summary.runtime.mean
        })
        .with_note(
            "norm_runtime is normalized to the K=1 (full-map) row of the same \
             cores/config/links group",
        )
        .with_note(
            "paper shape: flat with unbounded links; with 2 B/cycle links Directory \
             degrades up to ~142% at 256 cores single-bit while PATCH grows a few percent",
        );
    args.finish(&table);
}
