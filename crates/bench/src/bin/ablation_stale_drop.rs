//! Ablation: the best-effort staleness bound (paper §8.1 uses 100
//! cycles; DESIGN.md §7).
//!
//! A direct request queued behind congestion for long enough is useless —
//! its miss has probably been served through the directory already — and
//! merely burns bandwidth when finally transmitted. This ablation sweeps
//! the drop threshold under constrained bandwidth.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_stale_drop [--quick]`

use patchsim::{run_many, summarize, LinkBandwidth, PredictorChoice, ProtocolKind, SimConfig};
use patchsim_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Ablation: best-effort stale-drop threshold (PATCH-All, 1 B/cycle links)\n");
    println!(
        "{:<14} {:>12} {:>14} {:>14}",
        "threshold", "runtime", "drops", "bytes/miss"
    );
    for stale in [25u64, 50, 100, 200, 400, 1600] {
        let mut config = SimConfig::new(ProtocolKind::Patch, scale.cores)
            .with_predictor(PredictorChoice::All)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(1.0))
            .with_ops_per_core(scale.ops)
            .with_warmup(scale.warmup);
        config.stale_drop_cycles = stale;
        let summary = summarize(&run_many(&config, scale.seeds));
        println!(
            "{:<14} {:>12.0} {:>14.0} {:>14.1}",
            stale, summary.runtime.mean, summary.dropped_packets, summary.bytes_per_miss.mean
        );
    }
}
