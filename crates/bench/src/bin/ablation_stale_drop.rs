//! Ablation: the best-effort staleness bound (paper §8.1 uses 100
//! cycles; DESIGN.md §7).
//!
//! A direct request queued behind congestion for long enough is useless —
//! its miss has probably been served through the directory already — and
//! merely burns bandwidth when finally transmitted. This ablation sweeps
//! the drop threshold under constrained bandwidth.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_stale_drop [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{ablation_stale_drop_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "ablation_stale_drop",
        "Ablation: best-effort stale-drop threshold (PATCH-All, 1 B/cycle links)",
    );
    let table = args
        .run_plan(ablation_stale_drop_plan(args.scale.clone()))
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_column("drops", 0, |cell| cell.summary.dropped_packets)
        .with_ci_column("bytes_per_miss", 1, |cell| cell.summary.bytes_per_miss)
        .with_note(
            "the paper uses a 100-cycle staleness bound: drop too early and useful \
             predictions are lost; too late and stale requests burn scarce bandwidth",
        );
    args.finish(&table);
}
