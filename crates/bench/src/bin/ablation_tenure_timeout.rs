//! Ablation: the token-tenure timeout policy (DESIGN.md §7).
//!
//! The paper sets the tenure timeout adaptively to twice the dynamic
//! average round-trip. This ablation compares that policy against fixed
//! timeouts: too short and requesters discard tokens they were about to
//! get to keep (wasted writebacks and refetches); too long and racing
//! tokens sit idle before funneling to the active requester.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_tenure_timeout [--quick]`

use patchsim::{
    run_many, summarize, PredictorChoice, ProtocolKind, SimConfig, TenureConfig, WorkloadSpec,
};
use patchsim_bench::Scale;
use patchsim_protocol::ProtocolConfig;

fn main() {
    let scale = Scale::from_args();
    // A contended workload where tenure actually fires: many writers on a
    // small hot table.
    let workload = WorkloadSpec::Microbenchmark {
        table_blocks: 256,
        write_frac: 0.5,
        think_mean: 5,
    };
    println!("Ablation: tenure timeout policy (PATCH-All, contended microbenchmark)\n");
    println!(
        "{:<18} {:>12} {:>16} {:>14}",
        "policy", "runtime", "tenure timeouts", "writebacks"
    );
    let policies: Vec<(String, TenureConfig)> = vec![
        ("fixed-50".into(), TenureConfig::Fixed(50)),
        ("fixed-200".into(), TenureConfig::Fixed(200)),
        ("fixed-800".into(), TenureConfig::Fixed(800)),
        ("fixed-3200".into(), TenureConfig::Fixed(3200)),
        ("adaptive-2x".into(), TenureConfig::paper_default()),
    ];
    for (name, tenure) in policies {
        let protocol = ProtocolConfig::new(ProtocolKind::Patch, scale.cores)
            .with_predictor(PredictorChoice::All)
            .with_tenure(tenure);
        let config = SimConfig::new(ProtocolKind::Patch, scale.cores)
            .with_protocol(protocol)
            .with_workload(workload.clone())
            .with_ops_per_core(scale.ops)
            .with_warmup(scale.warmup);
        let summary = summarize(&run_many(&config, scale.seeds));
        let timeouts: u64 = summary
            .runs
            .iter()
            .map(|r| r.counters.tenure_timeouts)
            .sum();
        let wbs: u64 = summary.runs.iter().map(|r| r.counters.writebacks).sum();
        println!(
            "{:<18} {:>12.0} {:>16} {:>14}",
            name, summary.runtime.mean, timeouts, wbs
        );
    }
}
