//! Ablation: the token-tenure timeout policy (DESIGN.md §7).
//!
//! The paper sets the tenure timeout adaptively to twice the dynamic
//! average round-trip. This ablation compares that policy against fixed
//! timeouts: too short and requesters discard tokens they were about to
//! get to keep (wasted writebacks and refetches); too long and racing
//! tokens sit idle before funneling to the active requester.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_tenure_timeout [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{ablation_tenure_timeout_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "ablation_tenure_timeout",
        "Ablation: tenure timeout policy (PATCH-All, contended microbenchmark)",
    );
    let table = args
        .run_plan(ablation_tenure_timeout_plan(args.scale.clone()))
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_column("tenure_timeouts", 0, |cell| {
            cell.summary
                .runs
                .iter()
                .map(|r| r.counters.tenure_timeouts)
                .sum::<u64>() as f64
        })
        .with_column("writebacks", 0, |cell| {
            cell.summary
                .runs
                .iter()
                .map(|r| r.counters.writebacks)
                .sum::<u64>() as f64
        })
        .with_note(
            "too-short fixed timeouts waste writebacks and refetches; too-long timeouts \
             idle racing tokens — the paper's adaptive 2x round-trip balances both",
        );
    args.finish(&table);
}
