//! Generic experiment-plan driver: run any registered figure or ablation
//! plan by name with the standard measurement columns.
//!
//! `cargo run --release -p patchsim-bench --bin runplan -- <plan> [--quick]
//! [--seeds N] [--threads N] [--fabric F] [--format {text,csv,json}]
//! [--out PATH]`
//!
//! `runplan list` prints the registered plan names. A missing or unknown
//! plan name prints the full registry (one name per line) and exits with
//! status 2.

use patchsim_bench::{plan_by_name, with_standard_columns, BenchArgs, PLAN_NAMES};

/// Prints every registered plan name, one per line, to `stderr`.
fn list_plans_to_stderr() {
    eprintln!("registered plans:");
    for plan in PLAN_NAMES {
        eprintln!("  {plan}");
    }
}

fn main() {
    let (args, positional) = BenchArgs::parse_with_positional(
        "runplan",
        "Run any registered experiment plan by name (see `runplan list`)",
        "plan",
    );
    let Some(name) = positional else {
        eprintln!("error: missing plan name");
        list_plans_to_stderr();
        std::process::exit(2);
    };
    if name == "list" {
        for plan in PLAN_NAMES {
            println!("{plan}");
        }
        return;
    }
    let Some(plan) = plan_by_name(&name, args.scale) else {
        eprintln!("error: unknown plan '{name}'");
        list_plans_to_stderr();
        std::process::exit(2);
    };
    let table = with_standard_columns(args.runner().run(&plan));
    args.finish(&table);
}
