//! Generic experiment-plan driver: run any registered figure or ablation
//! plan by name with the standard measurement columns.
//!
//! `cargo run --release -p patchsim-bench --bin runplan -- <plan> [--quick]
//! [--seeds N] [--threads N] [--fabric F] [--faults SPEC] [--store DIR]
//! [--cell-timeout SECS] [--retries N] [--format {text,csv,json}]
//! [--out PATH]`
//!
//! `runplan --help` lists every registered plan with a one-line
//! description; `runplan list` prints the bare plan names (one per line,
//! for scripting). A missing or unknown plan name prints the described
//! registry and exits with status 2.
//!
//! `runplan merge-store A B -o C` merges two result stores (see
//! `--store`) into a third, erroring out if the same cell key carries
//! different results in the two inputs.

use std::path::PathBuf;

use patchsim::exp::ResultStore;
use patchsim_bench::{plan_by_name, with_standard_columns, BenchArgs, PLAN_INFO, PLAN_NAMES};

/// The registered plans with their one-line descriptions, one per line,
/// aligned for terminal display.
fn plan_listing() -> String {
    let width = PLAN_INFO
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    PLAN_INFO
        .iter()
        .map(|(name, desc)| format!("  {name:<width$}  {desc}"))
        .collect::<Vec<_>>()
        .join("\n")
}

const MERGE_USAGE: &str = "Usage: runplan merge-store <STORE_A> <STORE_B> -o <OUT>

Merges the entries of two result stores into a third (created if
absent). Identical duplicate entries are skipped; the same key holding
two different results is a hard error naming both entry files.";

/// Handles `runplan merge-store A B -o C`: never returns.
fn merge_store(raw: &[String]) -> ! {
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{MERGE_USAGE}");
        std::process::exit(0);
    }
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => {
                    eprintln!("error: {arg} requires a value\n\n{MERGE_USAGE}");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n\n{MERGE_USAGE}");
                std::process::exit(2);
            }
            value => inputs.push(PathBuf::from(value)),
        }
    }
    let (Some(out), [a, b]) = (out, inputs.as_slice()) else {
        eprintln!("error: merge-store needs two input stores and -o OUT\n\n{MERGE_USAGE}");
        std::process::exit(2);
    };
    match ResultStore::merge(a, b, &out) {
        Ok(report) => {
            eprintln!(
                "merged {} entries into {} ({} identical duplicates skipped, {} corrupt quarantined)",
                report.merged,
                out.display(),
                report.duplicates,
                report.quarantined,
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("merge-store") {
        merge_store(&raw[1..]);
    }
    let about = format!(
        "Run any registered experiment plan by name.\n\nPlans:\n{}",
        plan_listing()
    );
    let (args, positional) = BenchArgs::parse_with_positional("runplan", &about, "plan");
    let Some(name) = positional else {
        eprintln!("error: missing plan name\n\nPlans:\n{}", plan_listing());
        std::process::exit(2);
    };
    if name == "list" {
        for plan in PLAN_NAMES {
            println!("{plan}");
        }
        return;
    }
    let Some(plan) = plan_by_name(&name, args.scale.clone()) else {
        eprintln!("error: unknown plan '{name}'\n\nPlans:\n{}", plan_listing());
        std::process::exit(2);
    };
    let table = with_standard_columns(args.run_plan(plan));
    args.finish(&table);
}
