//! Generic experiment-plan driver: run any registered figure or ablation
//! plan by name with the standard measurement columns.
//!
//! `cargo run --release -p patchsim-bench --bin runplan -- <plan> [--quick]
//! [--seeds N] [--threads N] [--fabric F] [--faults SPEC] [--store DIR]
//! [--shard K/N] [--cell-timeout SECS] [--retries N] [--metrics PATH]
//! [--metrics-every CYCLES] [--spans] [--flight-recorder DIR]
//! [--progress] [--format {text,csv,json}] [--out PATH]`
//!
//! `runplan --help` lists every registered plan with a one-line
//! description; `runplan list` prints the bare plan names (one per line,
//! for scripting). A missing or unknown plan name prints the described
//! registry and exits with status 2. The `saturation` plan emits its own
//! open-loop column set (offered/achieved rate, drop %, sojourn
//! percentiles) instead of the standard closed-loop columns.
//!
//! Two store-maintenance subcommands ride along (see `SUBCOMMANDS` in
//! `runplan --help`): `merge-store A B -o C` merges two result stores
//! with conflict detection, and `store-stats DIR [--prune-stale]`
//! inventories a store and optionally garbage-collects entries stranded
//! by old code or format versions.

use std::path::PathBuf;

use patchsim::exp::ResultStore;
use patchsim_bench::{
    plan_by_name, with_saturation_columns, with_span_columns, with_standard_columns, BenchArgs,
    PLAN_INFO, PLAN_NAMES,
};

/// The registered plans with their one-line descriptions, one per line,
/// aligned for terminal display.
fn plan_listing() -> String {
    let width = PLAN_INFO
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    PLAN_INFO
        .iter()
        .map(|(name, desc)| format!("  {name:<width$}  {desc}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The store-maintenance subcommands, shown in the main `--help` so
/// they are discoverable next to the plan registry.
const SUBCOMMANDS_HELP: &str = "Subcommands:
  list                      print bare plan names, one per line
  merge-store A B -o OUT    merge two result stores with conflict
                            detection (see 'runplan merge-store --help')
  store-stats DIR [--prune-stale]
                            inventory a result store: entry counts by
                            code version, total bytes, quarantined and
                            unreadable counts; --prune-stale deletes
                            entries stranded by older code/format
                            versions (see 'runplan store-stats --help')";

const MERGE_USAGE: &str = "Usage: runplan merge-store <STORE_A> <STORE_B> -o <OUT>

Merges the entries of two result stores into a third (created if
absent). Identical duplicate entries are skipped; the same key holding
two different results is a hard error naming both entry files.";

const STATS_USAGE: &str = "Usage: runplan store-stats <DIR> [--prune-stale]

Inventories a result store: entry counts bucketed by code version,
total bytes, quarantined files, and unreadable (corrupt-in-place)
entries. Entries from older code or format versions are counted, not
rejected — no lookup can ever hit them again, and --prune-stale
deletes them to reclaim the space.";

/// Handles `runplan merge-store A B -o C`: never returns.
fn merge_store(raw: &[String]) -> ! {
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{MERGE_USAGE}");
        std::process::exit(0);
    }
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => {
                    eprintln!("error: {arg} requires a value\n\n{MERGE_USAGE}");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n\n{MERGE_USAGE}");
                std::process::exit(2);
            }
            value => inputs.push(PathBuf::from(value)),
        }
    }
    let (Some(out), [a, b]) = (out, inputs.as_slice()) else {
        eprintln!("error: merge-store needs two input stores and -o OUT\n\n{MERGE_USAGE}");
        std::process::exit(2);
    };
    match ResultStore::merge(a, b, &out) {
        Ok(report) => {
            eprintln!(
                "patchsim: merged {} entries into {} ({} identical duplicates skipped, {} corrupt quarantined)",
                report.merged,
                out.display(),
                report.duplicates,
                report.quarantined,
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Handles `runplan store-stats DIR [--prune-stale]`: never returns.
fn store_stats(raw: &[String]) -> ! {
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{STATS_USAGE}");
        std::process::exit(0);
    }
    let mut dir: Option<PathBuf> = None;
    let mut prune = false;
    for arg in raw {
        match arg.as_str() {
            "--prune-stale" => prune = true,
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n\n{STATS_USAGE}");
                std::process::exit(2);
            }
            value => {
                if dir.is_some() {
                    eprintln!("error: unexpected argument '{value}'\n\n{STATS_USAGE}");
                    std::process::exit(2);
                }
                dir = Some(PathBuf::from(value));
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("error: store-stats needs a store directory\n\n{STATS_USAGE}");
        std::process::exit(2);
    };
    if !dir.is_dir() {
        eprintln!("error: '{}' is not a directory", dir.display());
        std::process::exit(2);
    }
    let store = match ResultStore::open(&dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let run = || -> Result<(), patchsim::exp::StoreError> {
        let report = store.stats()?;
        println!("store {}", dir.display());
        for (version, count) in &report.by_code_version {
            let stale = if *version < patchsim::exp::CODE_VERSION {
                " (stale)"
            } else {
                ""
            };
            println!("  code v{version}: {count} entries{stale}");
        }
        if report.stale_format > 0 {
            println!("  stale entry format: {} entries", report.stale_format);
        }
        println!("  total bytes: {}", report.total_bytes);
        println!("  quarantined: {}", report.quarantined);
        println!("  unreadable:  {}", report.unreadable);
        if prune {
            let removed = store.prune_stale()?;
            println!("  pruned: {removed} stale entries");
        }
        Ok(())
    };
    match run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("merge-store") => merge_store(&raw[1..]),
        Some("store-stats") => store_stats(&raw[1..]),
        _ => {}
    }
    let about = format!(
        "Run any registered experiment plan by name.\n\nPlans:\n{}\n\n{SUBCOMMANDS_HELP}",
        plan_listing()
    );
    let (args, positional) = BenchArgs::parse_with_positional("runplan", &about, "plan");
    let Some(name) = positional else {
        eprintln!(
            "error: missing plan name\n\nPlans:\n{}\n\n{SUBCOMMANDS_HELP}",
            plan_listing()
        );
        std::process::exit(2);
    };
    if name == "list" {
        for plan in PLAN_NAMES {
            println!("{plan}");
        }
        return;
    }
    let Some(plan) = plan_by_name(&name, args.scale.clone()) else {
        eprintln!("error: unknown plan '{name}'\n\nPlans:\n{}", plan_listing());
        std::process::exit(2);
    };
    let table = args.run_plan(plan);
    let mut table = if name == "saturation" {
        with_saturation_columns(table)
    } else {
        with_standard_columns(table)
    };
    if args.spans {
        table = with_span_columns(table);
    }
    args.finish(&table);
}
