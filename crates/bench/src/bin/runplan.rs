//! Generic experiment-plan driver: run any registered figure or ablation
//! plan by name with the standard measurement columns.
//!
//! `cargo run --release -p patchsim-bench --bin runplan -- <plan> [--quick]
//! [--seeds N] [--threads N] [--fabric F] [--faults SPEC]
//! [--format {text,csv,json}] [--out PATH]`
//!
//! `runplan --help` lists every registered plan with a one-line
//! description; `runplan list` prints the bare plan names (one per line,
//! for scripting). A missing or unknown plan name prints the described
//! registry and exits with status 2.

use patchsim_bench::{plan_by_name, with_standard_columns, BenchArgs, PLAN_INFO, PLAN_NAMES};

/// The registered plans with their one-line descriptions, one per line,
/// aligned for terminal display.
fn plan_listing() -> String {
    let width = PLAN_INFO
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    PLAN_INFO
        .iter()
        .map(|(name, desc)| format!("  {name:<width$}  {desc}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let about = format!(
        "Run any registered experiment plan by name.\n\nPlans:\n{}",
        plan_listing()
    );
    let (args, positional) = BenchArgs::parse_with_positional("runplan", &about, "plan");
    let Some(name) = positional else {
        eprintln!("error: missing plan name\n\nPlans:\n{}", plan_listing());
        std::process::exit(2);
    };
    if name == "list" {
        for plan in PLAN_NAMES {
            println!("{plan}");
        }
        return;
    }
    let Some(plan) = plan_by_name(&name, args.scale.clone()) else {
        eprintln!("error: unknown plan '{name}'\n\nPlans:\n{}", plan_listing());
        std::process::exit(2);
    };
    let table = with_standard_columns(args.run_plan(plan));
    args.finish(&table);
}
