//! Extension study: limited-pointer directories (Dir-i-B) alongside the
//! paper's coarse-vector sweep.
//!
//! Limited pointers are exact for lightly shared blocks but degrade to
//! broadcast on overflow. DIRECTORY then pays broadcast-sized ack storms
//! for widely shared blocks, while PATCH again hears only from token
//! holders — extending the paper's §7 argument to a second family of
//! inexact encodings.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_limited_pointer [--quick]`

use patchsim::{
    run_many, summarize, LinkBandwidth, ProtocolKind, SharerEncoding, SimConfig, TrafficClass,
    WorkloadSpec,
};
use patchsim_bench::{microbench_schedule, Scale};
use patchsim_protocol::ProtocolConfig;

fn main() {
    let scale = Scale::from_args();
    let cores = scale.cores;
    let (warmup, ops) = microbench_schedule(cores);
    println!(
        "Extension: limited-pointer directories ({} cores, 2 B/cycle links)\n",
        cores
    );
    println!(
        "{:<12} {:<12} {:>12} {:>14} {:>16}",
        "protocol", "encoding", "runtime", "ack bytes/miss", "dir bits/entry"
    );
    let encodings = [
        SharerEncoding::FullMap,
        SharerEncoding::LimitedPointer { pointers: 4 },
        SharerEncoding::LimitedPointer { pointers: 1 },
        SharerEncoding::Coarse {
            cores_per_bit: (cores / 4).max(2),
        },
    ];
    for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
        let mut baseline = None;
        for encoding in encodings {
            let protocol = ProtocolConfig::new(kind, cores).with_sharer_encoding(encoding);
            let config = SimConfig::new(kind, cores)
                .with_protocol(protocol)
                .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
                .with_workload(WorkloadSpec::microbenchmark())
                .with_ops_per_core(ops)
                .with_warmup(warmup);
            let summary = summarize(&run_many(&config, scale.seeds));
            let base = *baseline.get_or_insert(summary.runtime.mean);
            let bits = patchsim_mem::SharerSet::new(cores, encoding).bits_per_entry();
            println!(
                "{:<12} {:<12} {:>12.3} {:>14.1} {:>16}",
                kind.label(),
                encoding.to_string(),
                summary.runtime.mean / base,
                summary.class_mean(TrafficClass::Ack),
                bits,
            );
        }
    }
}
