//! Extension study: limited-pointer directories (Dir-i-B) alongside the
//! paper's coarse-vector sweep.
//!
//! Limited pointers are exact for lightly shared blocks but degrade to
//! broadcast on overflow. DIRECTORY then pays broadcast-sized ack storms
//! for widely shared blocks, while PATCH again hears only from token
//! holders — extending the paper's §7 argument to a second family of
//! inexact encodings.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_limited_pointer [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim::TrafficClass;
use patchsim_bench::{ablation_limited_pointer_plan, BenchArgs};
use patchsim_mem::SharerSet;

fn main() {
    let args = BenchArgs::parse(
        "ablation_limited_pointer",
        "Extension: limited-pointer directories vs coarse vectors (2 B/cycle links)",
    );
    let table = args
        .run_plan(ablation_limited_pointer_plan(args.scale.clone()))
        .with_normalized_column("norm_runtime", 3, "encoding", "full-map", |cell| {
            cell.summary.runtime.mean
        })
        .with_column("ack_bytes_per_miss", 1, |cell| {
            cell.summary.class_mean(TrafficClass::Ack)
        })
        .with_column("dir_bits_per_entry", 0, |cell| {
            let protocol = &cell.config.protocol;
            SharerSet::new(protocol.num_nodes, protocol.sharer_encoding).bits_per_entry() as f64
        })
        .with_note(
            "norm_runtime is normalized to the full-map row of the same protocol; \
             limited pointers degrade to broadcast on overflow, which Directory pays \
             for in ack storms while PATCH's tokenless nodes stay silent",
        );
    args.finish(&table);
}
