//! Ablation: zero-token acknowledgement elision (paper §3 "avoiding
//! unnecessary acknowledgments"; DESIGN.md §7).
//!
//! PATCH's scalability under inexact encodings comes from token holders
//! being the only responders. Forcing PATCH to send DIRECTORY-style
//! zero-token invalidation acks quantifies exactly how much of Figures
//! 9–10 that single property buys.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_ack_elision [--quick]`

use patchsim::{
    run_many, summarize, LinkBandwidth, ProtocolKind, SharerEncoding, SimConfig, TrafficClass,
    WorkloadSpec,
};
use patchsim_bench::Scale;
use patchsim_protocol::ProtocolConfig;

fn main() {
    let scale = Scale::from_args();
    let coarse = SharerEncoding::Coarse {
        cores_per_bit: (scale.cores / 4).max(2),
    };
    println!(
        "Ablation: zero-token ack elision (PATCH, coarse encoding {coarse}, 2 B/cycle links)\n"
    );
    println!(
        "{:<16} {:>12} {:>16} {:>14}",
        "acks", "runtime", "ack bytes/miss", "bytes/miss"
    );
    for (name, elide) in [("elided (PATCH)", true), ("always (Dir-like)", false)] {
        let mut protocol =
            ProtocolConfig::new(ProtocolKind::Patch, scale.cores).with_sharer_encoding(coarse);
        if !elide {
            protocol = protocol.without_ack_elision();
        }
        let config = SimConfig::new(ProtocolKind::Patch, scale.cores)
            .with_protocol(protocol)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
            .with_workload(WorkloadSpec::microbenchmark())
            .with_ops_per_core(scale.ops)
            .with_warmup(scale.warmup);
        let summary = summarize(&run_many(&config, scale.seeds));
        println!(
            "{:<16} {:>12.0} {:>16.1} {:>14.1}",
            name,
            summary.runtime.mean,
            summary.class_mean(TrafficClass::Ack),
            summary.bytes_per_miss.mean
        );
    }
}
