//! Ablation: zero-token acknowledgement elision (paper §3 "avoiding
//! unnecessary acknowledgments"; DESIGN.md §7).
//!
//! PATCH's scalability under inexact encodings comes from token holders
//! being the only responders. Forcing PATCH to send DIRECTORY-style
//! zero-token invalidation acks quantifies exactly how much of Figures
//! 9–10 that single property buys.
//!
//! `cargo run --release -p patchsim-bench --bin ablation_ack_elision [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim::TrafficClass;
use patchsim_bench::{ablation_ack_elision_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "ablation_ack_elision",
        "Ablation: zero-token ack elision (PATCH, coarse encoding, 2 B/cycle links)",
    );
    let table = args
        .run_plan(ablation_ack_elision_plan(args.scale.clone()))
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_column("ack_bytes_per_miss", 1, |cell| {
            cell.summary.class_mean(TrafficClass::Ack)
        })
        .with_ci_column("bytes_per_miss", 1, |cell| cell.summary.bytes_per_miss)
        .with_note(
            "forcing Directory-style zero-token acks shows how much of the Figure 9/10 \
             advantage comes from tokenless nodes staying silent",
        );
    args.finish(&table);
}
