//! Figure 10: traffic per miss, by class, under inexact directory
//! encodings (2 B/cycle links), normalized to each protocol's full-map
//! configuration.
//!
//! The paper's shape: DIRECTORY becomes acknowledgement-dominated as the
//! encoding coarsens (up to +319% total traffic at 256 cores/single bit),
//! while PATCH — whose tokenless nodes stay silent — grows at most ~32%.
//!
//! `cargo run --release -p patchsim-bench --bin fig10_inexact_traffic [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim_bench::{inexact_traffic_plan, with_traffic_class_columns, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig10_inexact_traffic",
        "Figure 10: traffic per miss vs sharer-encoding coarseness (2 B/cycle links)",
    );
    let table = with_traffic_class_columns(
        args.run_plan(inexact_traffic_plan(args.scale.clone()))
            .with_title("Figure 10: traffic per miss vs sharer-encoding coarseness"),
    )
    .with_ci_column("bytes_per_miss", 1, |cell| cell.summary.bytes_per_miss)
    .with_normalized_column("norm_traffic", 2, "K", "1", |cell| {
        cell.summary.bytes_per_miss.mean
    })
    .with_note(
        "class columns are bytes/miss; norm_traffic is normalized to the K=1 (full-map) \
         row of the same cores/config group",
    )
    .with_note(
        "paper shape: Directory becomes ack-dominated as the encoding coarsens (up to \
         +319% at 256 cores single-bit) while PATCH grows at most ~32%",
    );
    args.finish(&table);
}
