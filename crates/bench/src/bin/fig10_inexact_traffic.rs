//! Figure 10: traffic per miss, by class, under inexact directory
//! encodings (2 B/cycle links), normalized to each protocol's full-map
//! configuration.
//!
//! The paper's shape: DIRECTORY becomes acknowledgement-dominated as the
//! encoding coarsens (up to +319% total traffic at 256 cores/single bit),
//! while PATCH — whose tokenless nodes stay silent — grows at most ~32%.
//!
//! `cargo run --release -p patchsim-bench --bin fig10_inexact_traffic [--quick] [--seeds N]`

use patchsim::{run_many, summarize, LinkBandwidth, ProtocolKind, TrafficClass};
use patchsim_bench::{coarseness_sweep, inexact_config, Scale};

fn main() {
    let scale = Scale::from_args();
    let sizes: &[u16] = if scale.cores <= 16 {
        &[16, 32] // --quick
    } else {
        &[64, 128, 256]
    };
    println!("Figure 10: traffic per miss vs sharer-encoding coarseness (2 B/cycle links)\n");
    println!(
        "{:<10} {:>5} {:>4} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "protocol", "cores", "K", "Data", "Ack", "Fwd", "IndReq", "norm.total"
    );
    for &cores in sizes {
        let ops = 0; // use the steady-state microbench schedule
        for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
            let mut baseline = None;
            for k in coarseness_sweep(cores) {
                let config = inexact_config(kind, cores, k, LinkBandwidth::BytesPerCycle(2.0), ops);
                let summary = summarize(&run_many(&config, scale.seeds));
                let base = *baseline.get_or_insert(summary.bytes_per_miss.mean);
                println!(
                    "{:<10} {:>5} {:>4} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>11.2}",
                    kind.label(),
                    cores,
                    k,
                    summary.class_mean(TrafficClass::Data),
                    summary.class_mean(TrafficClass::Ack),
                    summary.class_mean(TrafficClass::Forward),
                    summary.class_mean(TrafficClass::IndirectRequest),
                    summary.bytes_per_miss.mean / base,
                );
            }
        }
        println!();
    }
}
