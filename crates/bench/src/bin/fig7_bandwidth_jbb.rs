//! Figure 7: runtime vs link bandwidth for jbb — the companion sweep to
//! Figure 6 (see `fig6_bandwidth_ocean`). The paper reports the same
//! shape with a mid-sweep PATCH-All win of up to ~5.2%.
//!
//! `cargo run --release -p patchsim-bench --bin fig7_bandwidth_jbb [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim::presets;
use patchsim_bench::{bandwidth_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig7_bandwidth_jbb",
        "Figure 7: runtime vs link bandwidth on jbb (normalized to Directory)",
    );
    let table = args
        .run_plan(bandwidth_plan(args.scale.clone(), presets::jbb()))
        .with_title("Figure 7: bandwidth adaptivity on jbb")
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
            cell.summary.runtime.mean
        })
        .with_column("drops", 0, |cell| cell.summary.dropped_packets)
        .with_note("norm_runtime is normalized to Directory at the same bandwidth")
        .with_note("paper shape: same as Figure 6 with a mid-sweep PATCH-All win of up to ~5.2%");
    args.finish(&table);
}
