//! Figure 6: runtime vs link bandwidth for ocean — DIRECTORY vs
//! PATCH-All vs the non-adaptive PATCH-All variant.
//!
//! The paper's shape: with plentiful bandwidth both PATCH variants beat
//! DIRECTORY identically; as bandwidth shrinks, PATCH-All-NonAdaptive
//! deteriorates past DIRECTORY while adaptive PATCH-All stays at or below
//! 1.0, and in the middle of the sweep beats both (by up to ~6.3%).
//!
//! `cargo run --release -p patchsim-bench --bin fig6_bandwidth_ocean [--quick] [--seeds N]`

use patchsim::{presets, run_many, summarize};
use patchsim_bench::{bandwidth_sweep_configs, Scale, BANDWIDTH_SWEEP};

fn main() {
    let scale = Scale::from_args();
    let workload = presets::ocean();
    println!(
        "Figure 6: bandwidth adaptivity on {} ({} cores; runtime normalized to Directory)\n",
        workload.name(),
        scale.cores
    );
    println!(
        "{:>16} {:>11} {:>14} {:>11} {:>14}",
        "bytes/1000cyc", "Directory", "PATCH-All-NA", "PATCH-All", "drops(All)"
    );
    for bw in BANDWIDTH_SWEEP {
        let mut norm = Vec::new();
        let mut drops = 0.0;
        let mut baseline = None;
        for (name, config) in bandwidth_sweep_configs(scale, &workload, bw) {
            let summary = summarize(&run_many(&config, scale.seeds));
            let base = *baseline.get_or_insert(summary.runtime.mean);
            norm.push(summary.runtime.mean / base);
            if name == "PATCH-All" {
                drops = summary.dropped_packets;
            }
        }
        println!(
            "{:>16} {:>11.3} {:>14.3} {:>11.3} {:>14.0}",
            bw, norm[0], norm[1], norm[2], drops
        );
    }
}
