//! Figure 6: runtime vs link bandwidth for ocean — DIRECTORY vs
//! PATCH-All vs the non-adaptive PATCH-All variant.
//!
//! The paper's shape: with plentiful bandwidth both PATCH variants beat
//! DIRECTORY identically; as bandwidth shrinks, PATCH-All-NonAdaptive
//! deteriorates past DIRECTORY while adaptive PATCH-All stays at or below
//! 1.0, and in the middle of the sweep beats both (by up to ~6.3%).
//!
//! `cargo run --release -p patchsim-bench --bin fig6_bandwidth_ocean [--quick]
//! [--seeds N] [--threads N] [--format {text,csv,json}] [--out PATH]`

use patchsim::presets;
use patchsim_bench::{bandwidth_plan, BenchArgs};

fn main() {
    let args = BenchArgs::parse(
        "fig6_bandwidth_ocean",
        "Figure 6: runtime vs link bandwidth on ocean (normalized to Directory)",
    );
    let table = args
        .run_plan(bandwidth_plan(args.scale.clone(), presets::ocean()))
        .with_title("Figure 6: bandwidth adaptivity on ocean")
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
            cell.summary.runtime.mean
        })
        .with_column("drops", 0, |cell| cell.summary.dropped_packets)
        .with_note("norm_runtime is normalized to Directory at the same bandwidth")
        .with_note(
            "paper shape: PATCH-All-NA collapses at low bandwidth while adaptive \
             PATCH-All stays at or below Directory (mid-sweep win up to ~6.3%)",
        );
    args.finish(&table);
}
