//! Workload specifications and named presets.

use std::sync::Arc;

use patchsim_kernel::SimRng;
use patchsim_noc::NodeId;

use crate::arrivals::ArrivalProfile;
use crate::generator::Generator;
use crate::replay::TraceData;
use crate::service::ServiceProfile;

/// The sharing-pattern statistics of a synthetic workload.
///
/// The address space is laid out in disjoint regions (per cluster of
/// cores): a **shared pool** touched by every core in the cluster, a
/// **producer–consumer ring** of per-core regions written by their owner
/// and read by the next core around the ring, and per-core **private**
/// regions. Every parameter is a probability or a size in cache blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct SharingProfile {
    /// Human-readable name used in figure output.
    pub name: &'static str,
    /// Cores per sharing cluster. The paper runs four 16-core copies of
    /// each workload on its 64-core system; sharing never crosses
    /// clusters.
    pub cluster_size: u16,
    /// Probability that an access targets the shared pool.
    pub shared_frac: f64,
    /// Size of the cluster's shared pool, in blocks.
    pub shared_blocks: u64,
    /// Probability that a shared access starts a migratory
    /// read-modify-write pair (read now, write the same block next).
    pub migratory_frac: f64,
    /// Probability that a shared access is a producer–consumer access
    /// (read the ring-predecessor's region or write one's own).
    pub producer_consumer_frac: f64,
    /// Size of each core's producer–consumer region, in blocks.
    pub pc_blocks_per_core: u64,
    /// Probability that a plain shared-pool access is a write.
    pub shared_write_frac: f64,
    /// Size of each core's private region, in blocks.
    pub private_blocks: u64,
    /// Probability that a private access is a write.
    pub private_write_frac: f64,
    /// Mean think time (non-memory work) between accesses, in cycles;
    /// sampled geometrically.
    pub think_mean: u64,
}

/// A complete workload specification: a synthetic sharing profile, the
/// paper's scalability microbenchmark, a service-traffic profile, or the
/// replay of a recorded trace.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// A [`SharingProfile`]-driven synthetic workload.
    Synthetic(SharingProfile),
    /// The paper's microbenchmark (§8.1): uniform random accesses to a
    /// fixed-size table shared by all cores.
    Microbenchmark {
        /// Table size in blocks (paper: 16k locations).
        table_blocks: u64,
        /// Probability an access is a write (paper: 0.3).
        write_frac: f64,
        /// Mean think time between accesses, in cycles.
        think_mean: u64,
    },
    /// A [`ServiceProfile`]-driven service workload: Zipfian key skew,
    /// rotating hot sets, tenant phases, bursty arrivals.
    Service(ServiceProfile),
    /// An [`ArrivalProfile`]-driven **open-loop** workload: operations
    /// arrive on their own clock (decoupled from completions) into a
    /// bounded per-core backlog, so the offered load — unlike every
    /// closed-loop family — does not throttle itself when the protocol
    /// slows down. The generator's `think_cycles` carry the interarrival
    /// gaps; the core simulator supplies the backlog and overload
    /// accounting.
    OpenLoop(ArrivalProfile),
    /// Replay of a recorded trace: each core's generator becomes a
    /// cursor over its recorded stream. The `Arc` keeps cloning a spec
    /// (which happens once per core and once per experiment cell) from
    /// duplicating the trace body.
    Trace(Arc<TraceData>),
}

impl WorkloadSpec {
    /// The paper's microbenchmark with its published parameters.
    pub fn microbenchmark() -> Self {
        WorkloadSpec::Microbenchmark {
            table_blocks: 16 * 1024,
            write_frac: 0.3,
            think_mean: 10,
        }
    }

    /// Wraps a recorded trace for replay.
    pub fn trace(data: TraceData) -> Self {
        WorkloadSpec::Trace(Arc::new(data))
    }

    /// Builds the per-core generator for `node` in an `num_nodes`-core
    /// system. Generators fork their own RNG stream from `rng`, so two
    /// generators built with the same arguments produce identical streams.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the spec's probabilities are
    /// outside `[0, 1]`.
    pub fn generator(&self, node: NodeId, num_nodes: u16, rng: SimRng) -> Generator {
        Generator::new(self.clone(), node, num_nodes, rng)
    }

    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Synthetic(p) => p.name,
            WorkloadSpec::Microbenchmark { .. } => "microbench",
            WorkloadSpec::Service(p) => p.name,
            WorkloadSpec::OpenLoop(p) => &p.name,
            WorkloadSpec::Trace(t) => &t.label,
        }
    }

    /// Approximate number of distinct blocks an `num_nodes`-core run of
    /// this workload touches. Used to pre-size the controllers' per-block
    /// tables; an estimate (region sizes, ignoring partial coverage), not
    /// a bound. For traces this is the *recording run's* estimate,
    /// reproduced verbatim so replayed table capacities match exactly.
    pub fn working_set_blocks(&self, num_nodes: u16) -> u64 {
        match self {
            WorkloadSpec::Microbenchmark { table_blocks, .. } => *table_blocks,
            WorkloadSpec::Synthetic(p) => {
                let clusters = (num_nodes as u64).div_ceil(p.cluster_size.max(1) as u64);
                let per_core = p.pc_blocks_per_core + p.private_blocks;
                clusters * (p.shared_blocks + p.cluster_size as u64 * per_core)
            }
            WorkloadSpec::Service(p) => p.keys.max(1),
            WorkloadSpec::OpenLoop(p) => p.keys.max(1),
            WorkloadSpec::Trace(t) => t.working_set_blocks,
        }
    }
}

/// Named presets standing in for the paper's five applications.
///
/// The parameters are tuned so the *relative* behaviour matches the
/// published characterization: oltp and apache are dominated by
/// read-write sharing (big wins for direct requests), jbb shares less,
/// barnes shares moderately with mostly-read data, and ocean leans on
/// neighbor (producer–consumer) exchange. Private regions are sized to
/// fit the 1MB private cache once warmed, as in the paper's
/// checkpointed full-system runs, so sharing misses dominate each
/// workload's measured miss mix.
pub mod presets {
    use super::*;

    /// OLTP (TPC-C-like): intense migratory sharing of a modest hot set.
    pub fn oltp() -> WorkloadSpec {
        WorkloadSpec::Synthetic(SharingProfile {
            name: "oltp",
            cluster_size: 16,
            shared_frac: 0.55,
            shared_blocks: 2048,
            migratory_frac: 0.45,
            producer_consumer_frac: 0.05,
            pc_blocks_per_core: 64,
            shared_write_frac: 0.35,
            private_blocks: 512,
            private_write_frac: 0.25,
            think_mean: 15,
        })
    }

    /// Apache (static web serving): heavy sharing, slightly less
    /// migratory than oltp.
    pub fn apache() -> WorkloadSpec {
        WorkloadSpec::Synthetic(SharingProfile {
            name: "apache",
            cluster_size: 16,
            shared_frac: 0.55,
            shared_blocks: 4096,
            migratory_frac: 0.40,
            producer_consumer_frac: 0.10,
            pc_blocks_per_core: 64,
            shared_write_frac: 0.30,
            private_blocks: 512,
            private_write_frac: 0.25,
            think_mean: 15,
        })
    }

    /// SPECjbb-like middleware: moderate sharing, larger private heaps.
    pub fn jbb() -> WorkloadSpec {
        WorkloadSpec::Synthetic(SharingProfile {
            name: "jbb",
            cluster_size: 16,
            shared_frac: 0.35,
            shared_blocks: 4096,
            migratory_frac: 0.25,
            producer_consumer_frac: 0.05,
            pc_blocks_per_core: 64,
            shared_write_frac: 0.30,
            private_blocks: 1024,
            private_write_frac: 0.30,
            think_mean: 20,
        })
    }

    /// SPLASH2 barnes (N-body): mostly-read sharing of the tree.
    pub fn barnes() -> WorkloadSpec {
        WorkloadSpec::Synthetic(SharingProfile {
            name: "barnes",
            cluster_size: 16,
            shared_frac: 0.35,
            shared_blocks: 4096,
            migratory_frac: 0.10,
            producer_consumer_frac: 0.05,
            pc_blocks_per_core: 64,
            shared_write_frac: 0.15,
            private_blocks: 1024,
            private_write_frac: 0.30,
            think_mean: 25,
        })
    }

    /// SPLASH2 ocean: capacity-dominated with nearest-neighbor exchange.
    pub fn ocean() -> WorkloadSpec {
        WorkloadSpec::Synthetic(SharingProfile {
            name: "ocean",
            cluster_size: 16,
            shared_frac: 0.28,
            shared_blocks: 2048,
            migratory_frac: 0.05,
            producer_consumer_frac: 0.50,
            pc_blocks_per_core: 256,
            shared_write_frac: 0.30,
            private_blocks: 2048,
            private_write_frac: 0.35,
            think_mean: 20,
        })
    }

    /// All five presets in the paper's figure order.
    pub fn all() -> Vec<WorkloadSpec> {
        vec![jbb(), oltp(), apache(), barnes(), ocean()]
    }

    /// Looks a preset up by name. Service presets from
    /// [`service_presets`](crate::service_presets) are included so the
    /// bench `--workload` flag can name any generated workload.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        use crate::service::service_presets as svc;
        match name {
            "oltp" => Some(oltp()),
            "apache" => Some(apache()),
            "jbb" => Some(jbb()),
            "barnes" => Some(barnes()),
            "ocean" => Some(ocean()),
            "microbench" => Some(WorkloadSpec::microbenchmark()),
            "svc-uniform" => Some(svc::uniform()),
            "svc-zipf" => Some(svc::zipf()),
            "svc-hot" => Some(svc::zipf_hot()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_probabilities() {
        for spec in presets::all() {
            let WorkloadSpec::Synthetic(p) = &spec else {
                panic!("presets are synthetic")
            };
            for frac in [
                p.shared_frac,
                p.migratory_frac,
                p.producer_consumer_frac,
                p.shared_write_frac,
                p.private_write_frac,
            ] {
                assert!((0.0..=1.0).contains(&frac), "{}: bad fraction", p.name);
            }
            assert!(p.migratory_frac + p.producer_consumer_frac <= 1.0);
            assert!(p.cluster_size > 0);
        }
    }

    #[test]
    fn by_name_round_trips() {
        for name in [
            "oltp",
            "apache",
            "jbb",
            "barnes",
            "ocean",
            "microbench",
            "svc-uniform",
            "svc-zipf",
            "svc-hot",
        ] {
            let spec = presets::by_name(name).unwrap();
            assert_eq!(spec.name(), name);
        }
        assert!(presets::by_name("nonsense").is_none());
    }

    #[test]
    fn open_loop_spec_reports_profile_metadata() {
        let p = crate::ArrivalProfile::parse("poisson:100,keys=2048").unwrap();
        let spec = WorkloadSpec::OpenLoop(p);
        assert_eq!(spec.name(), "open:poisson:100,keys=2048");
        assert_eq!(spec.working_set_blocks(8), 2048);
    }

    #[test]
    fn trace_spec_reports_recorded_metadata() {
        use crate::replay::TraceData;
        let spec = WorkloadSpec::trace(TraceData::empty("oltp", 42, 8, 4096));
        assert_eq!(spec.name(), "oltp");
        assert_eq!(spec.working_set_blocks(8), 4096);
    }

    #[test]
    fn microbenchmark_matches_paper_parameters() {
        let WorkloadSpec::Microbenchmark {
            table_blocks,
            write_frac,
            ..
        } = WorkloadSpec::microbenchmark()
        else {
            panic!()
        };
        assert_eq!(table_blocks, 16 * 1024);
        assert!((write_frac - 0.3).abs() < 1e-12);
    }

    #[test]
    fn commercial_workloads_share_more_than_scientific() {
        let get = |spec: WorkloadSpec| match spec {
            WorkloadSpec::Synthetic(p) => p.shared_frac * (1.0 - 0.0),
            _ => unreachable!(),
        };
        assert!(get(presets::oltp()) > get(presets::barnes()));
        assert!(get(presets::apache()) > get(presets::ocean()));
    }
}
