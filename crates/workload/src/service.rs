//! Service-shaped traffic: Zipfian key skew, rotating hot sets,
//! phase-changing tenant mixes, and bursty arrivals.
//!
//! The synthetic [`SharingProfile`](crate::SharingProfile) workloads model
//! the paper's checkpointed applications; a *service* under live traffic
//! looks different: requests hit a shared keyspace with heavy skew (a few
//! hot keys absorb most traffic), the hot set drifts over time, tenants
//! wax and wane in phases, and arrivals come in bursts. [`ServiceProfile`]
//! parameterizes all four effects on top of a YCSB-style [`ZipfSampler`].
//!
//! Service generators draw from a dedicated RNG stream
//! ([`streams::SERVICE`](patchsim_kernel::streams::SERVICE)) forked below
//! each core's per-node workload stream, so adding them cannot shift any
//! draw an existing workload makes.

use patchsim_kernel::SimRng;

use crate::WorkloadSpec;

/// A skewed-keyspace service workload.
///
/// All time-varying behaviour is keyed to the generator's own operation
/// count (not simulation time), which keeps the stream a pure function of
/// `(profile, node, seed)` — the same determinism contract as every other
/// workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceProfile {
    /// Human-readable name used in figure output.
    pub name: &'static str,
    /// Total keyspace size in blocks, split evenly across tenants.
    pub keys: u64,
    /// Zipf skew parameter `theta` in `[0, 1)`; `0` is uniform.
    pub theta: f64,
    /// Operations between hot-set rotations; `0` keeps the hot set fixed.
    pub hot_period: u64,
    /// How many ranks the key mapping shifts per rotation.
    pub hot_step: u64,
    /// Number of tenants partitioning the keyspace.
    pub tenants: u16,
    /// Operations per tenant phase; each phase promotes the next tenant
    /// to "hot". `0` pins tenant 0 as hot forever.
    pub phase_ops: u64,
    /// Probability an access targets the currently hot tenant (the rest
    /// pick a tenant uniformly).
    pub hot_tenant_frac: f64,
    /// Probability an access is a write.
    pub write_frac: f64,
    /// Mean think time between accesses, in cycles.
    pub think_mean: u64,
    /// Burst cycle length in operations; `0` means steady (open-loop
    /// bursts are approximated by think-time modulation, since cores in
    /// this simulator are closed-loop).
    pub burst_period: u64,
    /// Operations at the start of each burst cycle issued with divided
    /// think time.
    pub burst_len: u64,
    /// Think-time divisor during a burst.
    pub burst_think_div: u64,
}

impl ServiceProfile {
    /// Returns the profile with bursty arrivals layered on: the first
    /// `len` of every `period` operations issue with think time divided
    /// by `div`.
    pub fn with_burst(mut self, period: u64, len: u64, div: u64) -> Self {
        self.burst_period = period;
        self.burst_len = len;
        self.burst_think_div = div;
        self
    }
}

/// Service presets used by the `service` experiment plan.
pub mod service_presets {
    use super::*;

    fn base(name: &'static str, theta: f64) -> ServiceProfile {
        ServiceProfile {
            name,
            keys: 8192,
            theta,
            hot_period: 0,
            hot_step: 0,
            tenants: 1,
            phase_ops: 0,
            hot_tenant_frac: 0.0,
            write_frac: 0.2,
            think_mean: 10,
            burst_period: 0,
            burst_len: 0,
            burst_think_div: 1,
        }
    }

    /// Uniform keyspace traffic (`theta = 0`): the no-skew control.
    pub fn uniform() -> WorkloadSpec {
        WorkloadSpec::Service(base("svc-uniform", 0.0))
    }

    /// Zipfian skew at `theta = 0.9` (YCSB's default hot-key regime)
    /// with a static hot set.
    pub fn zipf() -> WorkloadSpec {
        WorkloadSpec::Service(base("svc-zipf", 0.9))
    }

    /// Zipfian skew plus a rotating hot set and four tenants trading the
    /// "hot" role in phases — the full time-varying service shape.
    pub fn zipf_hot() -> WorkloadSpec {
        WorkloadSpec::Service(ServiceProfile {
            hot_period: 256,
            hot_step: 97,
            tenants: 4,
            phase_ops: 512,
            hot_tenant_frac: 0.75,
            ..base("svc-hot", 0.9)
        })
    }
}

/// A YCSB-style bounded Zipfian sampler over ranks `0..n`.
///
/// Rank `0` is the hottest key. Uses the standard rejection-free closed
/// form (Gray et al.), with `theta = 0` degenerating to a uniform draw.
/// Sampling consumes exactly one RNG draw, so the draw count — and hence
/// downstream stream alignment — is independent of which rank comes out.
#[derive(Clone, Copy, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    one_half_pow_theta: f64,
}

/// The truncated zeta sum `Σ_{i=1..n} i^-theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| (i as f64).powf(-theta)).sum()
}

impl ZipfSampler {
    /// Builds a sampler over ranks `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "zipf sampler needs a non-empty keyspace");
        assert!(
            (0.0..1.0).contains(&theta),
            "zipf theta must be in [0, 1), got {theta}"
        );
        if theta == 0.0 || n == 1 {
            return ZipfSampler {
                n,
                theta: 0.0,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
                one_half_pow_theta: 0.0,
            };
        }
        let zetan = zeta(n, theta);
        let zeta2 = zeta(n.min(2), theta);
        ZipfSampler {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            one_half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// The analytic probability mass of the hottest `k` ranks.
    pub fn head_mass(&self, k: u64) -> f64 {
        let k = k.min(self.n);
        if self.theta == 0.0 {
            k as f64 / self.n as f64
        } else {
            zeta(k, self.theta) / self.zetan
        }
    }

    /// Draws a rank in `0..n` (0 = hottest), consuming one RNG draw.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.theta == 0.0 {
            return if self.n == 1 { 0 } else { rng.below(self.n) };
        }
        let u = rng.unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.one_half_pow_theta {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_across_runs() {
        let z = ZipfSampler::new(1024, 0.9);
        let mut a = SimRng::from_seed(11);
        let mut b = SimRng::from_seed(11);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn hot_set_mass_matches_the_analytic_zeta_ratio() {
        let n = 1024;
        let z = ZipfSampler::new(n, 0.9);
        let mut rng = SimRng::from_seed(3);
        let head = 16;
        let samples = 100_000;
        let hits = (0..samples).filter(|_| z.sample(&mut rng) < head).count() as f64;
        let empirical = hits / samples as f64;
        let analytic = z.head_mass(head);
        assert!(
            (empirical - analytic).abs() < 0.02,
            "top-{head} mass: empirical {empirical:.4} vs analytic {analytic:.4}"
        );
        // Skew sanity: 16/1024 keys must hold far more than their
        // uniform share of the mass.
        assert!(analytic > 0.3, "theta=0.9 head mass {analytic:.4}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let n = 64;
        let z = ZipfSampler::new(n, 0.0);
        let mut rng = SimRng::from_seed(5);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..64_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 700 && max < 1300, "uniform spread {min}..{max}");
    }

    #[test]
    fn single_key_space_always_returns_rank_zero() {
        let z = ZipfSampler::new(1, 0.9);
        let mut rng = SimRng::from_seed(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn ranks_stay_in_bounds_at_high_skew() {
        let z = ZipfSampler::new(100, 0.99);
        let mut rng = SimRng::from_seed(17);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn with_burst_sets_the_burst_knobs() {
        let WorkloadSpec::Service(p) = service_presets::zipf() else {
            panic!()
        };
        let p = p.with_burst(256, 64, 8);
        assert_eq!(
            (p.burst_period, p.burst_len, p.burst_think_div),
            (256, 64, 8)
        );
    }
}
