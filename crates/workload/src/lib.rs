//! Synthetic workload generators for `patchsim`.
//!
//! The paper evaluates on two SPLASH2 applications (barnes, ocean) and
//! three Wisconsin Commercial Workload Suite applications (oltp, apache,
//! jbb), simulated with Simics full-system simulation, plus a scalability
//! microbenchmark. Full-system binary traces are not reproducible here, so
//! this crate substitutes **sharing-pattern-parameterized synthetic
//! generators** (see `DESIGN.md` §5): what the coherence protocol actually
//! sees is a per-core stream of reads and writes with particular
//! private/shared/migratory/producer–consumer statistics, and those
//! statistics — not instruction semantics — drive every effect the paper
//! measures.
//!
//! Each named preset ([`presets`]) fixes a [`SharingProfile`] chosen to
//! qualitatively match the published behaviour of its namesake (commercial
//! workloads sharing-miss-dominated, scientific workloads more
//! private/capacity-driven). The [`WorkloadSpec::Microbenchmark`] variant
//! is the paper's own synthetic benchmark, reproduced exactly: "each core
//! writes a random entry in a fixed-size table (16k locations) 30% of the
//! time and reads a random entry 70% of the time".
//!
//! Three further workload families round out the catalog (see
//! `docs/workloads.md`): [`WorkloadSpec::Service`] generates
//! service-shaped traffic — Zipfian key skew with rotating hot sets,
//! phase-changing tenant mixes, bursty arrivals — from a dedicated RNG
//! stream, [`WorkloadSpec::OpenLoop`] decouples arrivals from
//! completions behind a bounded per-core backlog (the only family that
//! can overload a protocol), and [`WorkloadSpec::Trace`] replays a
//! [`TraceData`] recorded by the `patchsim-trace` crate bit-identically.
//!
//! # Examples
//!
//! ```
//! use patchsim_kernel::SimRng;
//! use patchsim_noc::NodeId;
//! use patchsim_workload::{presets, WorkloadSpec};
//!
//! let spec = presets::oltp();
//! let mut g = spec.generator(NodeId::new(0), 64, SimRng::from_seed(1));
//! let item = g.next_item();
//! assert!(item.think_cycles < 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod generator;
mod profile;
mod replay;
mod service;

pub use arrivals::{ArrivalProcess, ArrivalProfile, OverloadPolicy};
pub use generator::{Generator, WorkItem};
pub use profile::{presets, SharingProfile, WorkloadSpec};
pub use replay::TraceData;
pub use service::{service_presets, ServiceProfile, ZipfSampler};
