//! The per-core access-stream generator.

use patchsim_kernel::{streams, SimRng};
use patchsim_mem::{AccessKind, BlockAddr};
use patchsim_noc::NodeId;

use crate::arrivals::{self, ArrivalProfile};
use crate::service::{ServiceProfile, ZipfSampler};
use crate::{SharingProfile, WorkloadSpec};

/// One memory operation produced by a workload generator: what to access
/// and how long the core computes before issuing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// The block to access.
    pub addr: BlockAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Non-memory work preceding the access, in cycles.
    pub think_cycles: u64,
}

/// An infinite per-core stream of [`WorkItem`]s.
///
/// Deterministic: the stream is a pure function of `(spec, node,
/// num_nodes, rng seed)`. Different cores fork different RNG streams from
/// the same root seed, and perturbation runs use different root seeds —
/// the confidence-interval methodology of the paper.
#[derive(Debug)]
pub struct Generator {
    spec: WorkloadSpec,
    node: NodeId,
    num_nodes: u16,
    rng: SimRng,
    /// Second half of a migratory read-modify-write pair, if one is queued.
    pending: Option<WorkItem>,
    ops_generated: u64,
    /// Precomputed Zipf tables for [`WorkloadSpec::Service`].
    zipf: Option<ZipfSampler>,
    /// Replay position for [`WorkloadSpec::Trace`].
    cursor: usize,
}

/// Address-space layout constants. Regions of different kinds (and of
/// different clusters) must never overlap; each cluster owns a fixed-size
/// window.
const SHARED_REGION: u64 = 0;
/// Per-cluster address stride: generous enough for any preset's regions.
const CLUSTER_STRIDE: u64 = 1 << 32;

impl Generator {
    /// Creates the generator for `node` of `num_nodes`. Forks a per-node
    /// RNG stream from `rng` so sibling generators are independent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn new(spec: WorkloadSpec, node: NodeId, num_nodes: u16, rng: SimRng) -> Self {
        assert!(node.raw() < num_nodes, "{node} out of range");
        if let WorkloadSpec::Trace(t) = &spec {
            assert_eq!(
                t.num_nodes, num_nodes,
                "trace '{}' was recorded on {} cores and cannot replay on {}",
                t.label, t.num_nodes, num_nodes
            );
        }
        let mut rng = rng.fork(node.raw() as u64);
        let mut zipf = None;
        match &spec {
            WorkloadSpec::Service(p) => {
                // Service generators draw from a stream forked *below* the
                // per-node workload stream under a dedicated label, so no
                // pre-existing workload's draws can ever shift.
                rng = rng.fork(streams::SERVICE);
                let tenant_keys = (p.keys / p.tenants.max(1) as u64).max(1);
                zipf = Some(ZipfSampler::new(tenant_keys, p.theta));
            }
            WorkloadSpec::OpenLoop(p) => {
                // Open-loop arrivals get their own dedicated stream below
                // the per-node stream, same contract as `serv`.
                rng = rng.fork(streams::ARRIVAL);
                zipf = Some(p.sampler());
            }
            _ => {}
        }
        Generator {
            spec,
            node,
            num_nodes,
            rng,
            pending: None,
            ops_generated: 0,
            zipf,
            cursor: 0,
        }
    }

    /// The node this generator belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of operations generated so far.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    /// Produces the next operation in the stream.
    pub fn next_item(&mut self) -> WorkItem {
        self.ops_generated += 1;
        if let Some(item) = self.pending.take() {
            return item;
        }
        match &self.spec {
            WorkloadSpec::Microbenchmark {
                table_blocks,
                write_frac,
                think_mean,
            } => {
                let (table_blocks, write_frac, think_mean) =
                    (*table_blocks, *write_frac, *think_mean);
                let addr = BlockAddr::new(self.rng.below(table_blocks));
                let kind = if self.rng.chance(write_frac) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                WorkItem {
                    addr,
                    kind,
                    think_cycles: self.think(think_mean),
                }
            }
            WorkloadSpec::Synthetic(profile) => {
                let profile = profile.clone();
                self.synthetic_item(&profile)
            }
            WorkloadSpec::Service(profile) => {
                let profile = profile.clone();
                self.service_item(&profile)
            }
            WorkloadSpec::OpenLoop(profile) => {
                let profile = profile.clone();
                self.open_item(&profile)
            }
            WorkloadSpec::Trace(_) => self.trace_item(),
        }
    }

    /// Produces the next service-traffic access. All time variation is
    /// keyed to this generator's own operation count, and every path
    /// consumes the same RNG draws in the same order (think, tenant
    /// chance, tenant pick, rank, write chance), so the stream stays a
    /// pure function of `(profile, node, seed)`.
    fn service_item(&mut self, p: &ServiceProfile) -> WorkItem {
        let ops = self.ops_generated;
        let mut think = self.think(p.think_mean);
        if p.burst_period > 0 && ops % p.burst_period < p.burst_len {
            think /= p.burst_think_div.max(1);
        }
        let tenants = p.tenants.max(1) as u64;
        let tenant_keys = (p.keys / tenants).max(1);
        let tenant = if tenants == 1 {
            0
        } else {
            let hot = ops.checked_div(p.phase_ops).map_or(0, |n| n % tenants);
            if self.rng.chance(p.hot_tenant_frac) {
                hot
            } else {
                self.rng.below(tenants)
            }
        };
        let zipf = self.zipf.expect("service generator has a sampler");
        let rank = zipf.sample(&mut self.rng);
        // Hot-set rotation: shift the rank-to-key mapping every
        // `hot_period` ops, so which *keys* are hot drifts over time
        // while the skew shape stays fixed.
        let offset = ops
            .checked_div(p.hot_period)
            .map_or(0, |n| n.wrapping_mul(p.hot_step) % tenant_keys);
        let addr = BlockAddr::new(tenant * tenant_keys + (rank + offset) % tenant_keys);
        let kind = if self.rng.chance(p.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        WorkItem {
            addr,
            kind,
            think_cycles: think,
        }
    }

    /// Produces the next open-loop arrival. `think_cycles` carries the
    /// interarrival gap (the time since the *previous arrival*, not
    /// since the previous completion — the core simulator schedules
    /// arrivals on this clock, decoupled from completions). Fixed draw
    /// order per item — gap, rank, write chance — keyed to the
    /// generator's own arrival count, so the stream is a pure function
    /// of `(profile, node, seed)`.
    fn open_item(&mut self, p: &ArrivalProfile) -> WorkItem {
        let index = self.ops_generated - 1; // 0-based arrival index
        let gap = arrivals::next_gap(p.process, index, &mut self.rng);
        let zipf = self.zipf.expect("open-loop generator has a sampler");
        let rank = zipf.sample(&mut self.rng);
        let kind = if self.rng.chance(p.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        WorkItem {
            addr: BlockAddr::new(rank),
            kind,
            think_cycles: gap,
        }
    }

    /// Replays the next recorded item for this core. Wraps around if
    /// asked for more items than were recorded (replaying a trace under
    /// its recording config never wraps).
    fn trace_item(&mut self) -> WorkItem {
        let WorkloadSpec::Trace(t) = &self.spec else {
            unreachable!("trace_item called on a non-trace spec")
        };
        let stream = &t.streams[self.node.raw() as usize];
        assert!(
            !stream.is_empty(),
            "trace '{}' has no items for {}",
            t.label,
            self.node
        );
        let item = stream[self.cursor % stream.len()];
        self.cursor += 1;
        item
    }

    fn synthetic_item(&mut self, p: &SharingProfile) -> WorkItem {
        let think = self.think(p.think_mean);
        let cluster = self.node.raw() / p.cluster_size;
        let slot = (self.node.raw() % p.cluster_size) as u64;
        let cluster_size = p.cluster_size.min(self.num_nodes) as u64;
        let base = cluster as u64 * CLUSTER_STRIDE;

        if self.rng.chance(p.shared_frac) {
            let roll = self.rng.unit();
            if roll < p.migratory_frac {
                // Migratory pair: read now, write the same block next.
                let addr = BlockAddr::new(base + SHARED_REGION + self.rng.below(p.shared_blocks));
                self.pending = Some(WorkItem {
                    addr,
                    kind: AccessKind::Write,
                    think_cycles: self.think(p.think_mean),
                });
                WorkItem {
                    addr,
                    kind: AccessKind::Read,
                    think_cycles: think,
                }
            } else if roll < p.migratory_frac + p.producer_consumer_frac {
                // Producer–consumer ring: write one's own region or read
                // the predecessor's.
                let pc_base = base + p.shared_blocks;
                let (region_slot, kind) = if self.rng.chance(0.5) {
                    (slot, AccessKind::Write)
                } else {
                    ((slot + cluster_size - 1) % cluster_size, AccessKind::Read)
                };
                let addr = BlockAddr::new(
                    pc_base
                        + region_slot * p.pc_blocks_per_core
                        + self.rng.below(p.pc_blocks_per_core),
                );
                WorkItem {
                    addr,
                    kind,
                    think_cycles: think,
                }
            } else {
                // Plain shared-pool access.
                let addr = BlockAddr::new(base + SHARED_REGION + self.rng.below(p.shared_blocks));
                let kind = if self.rng.chance(p.shared_write_frac) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                WorkItem {
                    addr,
                    kind,
                    think_cycles: think,
                }
            }
        } else {
            // Private access.
            let private_base = base
                + p.shared_blocks
                + cluster_size * p.pc_blocks_per_core
                + slot * p.private_blocks;
            let addr = BlockAddr::new(private_base + self.rng.below(p.private_blocks));
            let kind = if self.rng.chance(p.private_write_frac) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            WorkItem {
                addr,
                kind,
                think_cycles: think,
            }
        }
    }

    /// Uniformly distributed think time with the requested mean.
    fn think(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            0
        } else {
            self.rng.below(2 * mean + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use std::collections::BTreeSet;

    fn gen_for(spec: WorkloadSpec, node: u16, n: u16, seed: u64) -> Generator {
        spec.generator(NodeId::new(node), n, SimRng::from_seed(seed))
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = gen_for(presets::oltp(), 3, 64, 42);
        let mut b = gen_for(presets::oltp(), 3, 64, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_item(), b.next_item());
        }
    }

    #[test]
    fn different_nodes_see_different_streams() {
        let mut a = gen_for(presets::oltp(), 0, 64, 42);
        let mut b = gen_for(presets::oltp(), 1, 64, 42);
        let same = (0..200).filter(|_| a.next_item() == b.next_item()).count();
        assert!(same < 20);
    }

    #[test]
    fn microbenchmark_stays_in_table_with_write_ratio() {
        let mut g = gen_for(WorkloadSpec::microbenchmark(), 0, 4, 7);
        let mut writes = 0;
        for _ in 0..10_000 {
            let item = g.next_item();
            assert!(item.addr.raw() < 16 * 1024);
            if item.kind.is_write() {
                writes += 1;
            }
        }
        assert!(
            (2_700..3_300).contains(&writes),
            "write frac ~0.3, got {writes}"
        );
    }

    #[test]
    fn migratory_pairs_are_read_then_write_same_block() {
        let spec = WorkloadSpec::Synthetic(SharingProfile {
            migratory_frac: 1.0,
            shared_frac: 1.0,
            producer_consumer_frac: 0.0,
            ..match presets::oltp() {
                WorkloadSpec::Synthetic(p) => p,
                _ => unreachable!(),
            }
        });
        let mut g = gen_for(spec, 0, 16, 1);
        for _ in 0..100 {
            let first = g.next_item();
            let second = g.next_item();
            assert_eq!(first.kind, AccessKind::Read);
            assert_eq!(second.kind, AccessKind::Write);
            assert_eq!(first.addr, second.addr);
        }
    }

    #[test]
    fn private_regions_do_not_overlap_across_nodes() {
        let spec = presets::jbb();
        let mut seen: Vec<(u16, BTreeSet<u64>)> = Vec::new();
        for node in 0..4u16 {
            let mut g = gen_for(spec.clone(), node, 16, 9);
            let mut privates = BTreeSet::new();
            for _ in 0..2000 {
                let item = g.next_item();
                // Shared pool and pc ring live below the private bases.
                let WorkloadSpec::Synthetic(p) = &spec else {
                    unreachable!()
                };
                let private_floor = p.shared_blocks + 16 * p.pc_blocks_per_core;
                if item.addr.raw() >= private_floor {
                    privates.insert(item.addr.raw());
                }
            }
            seen.push((node, privates));
        }
        for (i, (_, a)) in seen.iter().enumerate() {
            for (_, b) in seen.iter().skip(i + 1) {
                assert!(a.is_disjoint(b), "private regions overlap");
            }
        }
    }

    #[test]
    fn clusters_do_not_share() {
        // Nodes 0 and 16 are in different 16-core clusters: no common
        // addresses at all.
        let spec = presets::apache();
        let mut a = gen_for(spec.clone(), 0, 64, 5);
        let mut b = gen_for(spec, 16, 64, 5);
        let addrs_a: BTreeSet<u64> = (0..3000).map(|_| a.next_item().addr.raw()).collect();
        let addrs_b: BTreeSet<u64> = (0..3000).map(|_| b.next_item().addr.raw()).collect();
        assert!(addrs_a.is_disjoint(&addrs_b));
    }

    #[test]
    fn nodes_within_cluster_share_the_pool() {
        let spec = presets::apache();
        let mut a = gen_for(spec.clone(), 0, 64, 5);
        let mut b = gen_for(spec, 1, 64, 5);
        let addrs_a: BTreeSet<u64> = (0..3000).map(|_| a.next_item().addr.raw()).collect();
        let addrs_b: BTreeSet<u64> = (0..3000).map(|_| b.next_item().addr.raw()).collect();
        assert!(!addrs_a.is_disjoint(&addrs_b), "cluster members share");
    }

    #[test]
    fn think_time_has_requested_mean() {
        let mut g = gen_for(WorkloadSpec::microbenchmark(), 0, 4, 3);
        let total: u64 = (0..10_000).map(|_| g.next_item().think_cycles).sum();
        let mean = total as f64 / 10_000.0;
        assert!(
            (8.0..12.0).contains(&mean),
            "mean think {mean} should be ~10"
        );
    }

    #[test]
    fn ops_generated_counts() {
        let mut g = gen_for(WorkloadSpec::microbenchmark(), 0, 4, 3);
        for _ in 0..5 {
            g.next_item();
        }
        assert_eq!(g.ops_generated(), 5);
    }

    #[test]
    fn service_stream_is_deterministic_and_in_bounds() {
        use crate::service_presets;
        let mut a = gen_for(service_presets::zipf_hot(), 2, 8, 21);
        let mut b = gen_for(service_presets::zipf_hot(), 2, 8, 21);
        for _ in 0..2000 {
            let item = a.next_item();
            assert_eq!(item, b.next_item());
            assert!(item.addr.raw() < 8192, "service addr within keyspace");
        }
    }

    #[test]
    fn service_skew_concentrates_mass_vs_uniform() {
        use crate::service_presets;
        let top_share = |spec: WorkloadSpec| {
            let mut g = gen_for(spec, 0, 8, 13);
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..20_000 {
                *counts.entry(g.next_item().addr.raw()).or_insert(0u64) += 1;
            }
            let mut freqs: Vec<u64> = counts.into_values().collect();
            freqs.sort_unstable_by(|a, b| b.cmp(a));
            freqs.iter().take(16).sum::<u64>() as f64 / 20_000.0
        };
        let zipf = top_share(service_presets::zipf());
        let uniform = top_share(service_presets::uniform());
        assert!(
            zipf > 4.0 * uniform,
            "zipf top-16 share {zipf:.3} should dwarf uniform {uniform:.3}"
        );
    }

    #[test]
    fn service_hot_set_rotates_over_time() {
        use crate::service_presets;
        // svc-hot rotates every 256 ops; the most popular key of the
        // first window should differ from a much later window's.
        let mut g = gen_for(service_presets::zipf_hot(), 0, 8, 5);
        let hottest = |g: &mut Generator| {
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..256 {
                *counts.entry(g.next_item().addr.raw()).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let early = hottest(&mut g);
        for _ in 0..4096 {
            g.next_item();
        }
        let late = hottest(&mut g);
        assert_ne!(early, late, "hot key should drift across rotations");
    }

    #[test]
    fn service_burst_window_shrinks_think_time() {
        use crate::service_presets;
        let WorkloadSpec::Service(p) = service_presets::uniform() else {
            panic!()
        };
        let spec = WorkloadSpec::Service(p.with_burst(256, 64, 8));
        let mut g = gen_for(spec, 0, 4, 7);
        let mut burst_total = 0u64;
        let mut steady_total = 0u64;
        for i in 1..=25_600u64 {
            let think = g.next_item().think_cycles;
            if i % 256 < 64 {
                burst_total += think;
            } else {
                steady_total += think;
            }
        }
        let burst_mean = burst_total as f64 / (25_600.0 * 64.0 / 256.0);
        let steady_mean = steady_total as f64 / (25_600.0 * 192.0 / 256.0);
        assert!(
            burst_mean < steady_mean / 4.0,
            "burst mean {burst_mean:.2} vs steady {steady_mean:.2}"
        );
    }

    #[test]
    fn open_loop_stream_is_deterministic_and_in_bounds() {
        let profile = crate::ArrivalProfile::parse("poisson:50,keys=512,theta=0.9").unwrap();
        let spec = WorkloadSpec::OpenLoop(profile);
        let mut a = gen_for(spec.clone(), 1, 8, 33);
        let mut b = gen_for(spec, 1, 8, 33);
        for _ in 0..2000 {
            let item = a.next_item();
            assert_eq!(item, b.next_item());
            assert!(item.addr.raw() < 512, "key within keyspace");
            assert!(item.think_cycles >= 1, "gaps are positive");
        }
    }

    #[test]
    fn open_loop_gaps_track_the_offered_rate() {
        let fast = crate::ArrivalProfile::parse("poisson:10").unwrap();
        let slow = crate::ArrivalProfile::parse("poisson:100").unwrap();
        let total = |p| -> u64 {
            let mut g = gen_for(WorkloadSpec::OpenLoop(p), 0, 4, 9);
            (0..5000).map(|_| g.next_item().think_cycles).sum()
        };
        let (fast_total, slow_total) = (total(fast), total(slow));
        assert!(
            slow_total > 5 * fast_total,
            "period 100 total {slow_total} vs period 10 total {fast_total}"
        );
    }

    #[test]
    fn trace_replay_returns_recorded_items_in_order_then_wraps() {
        use crate::TraceData;
        let mut t = TraceData::empty("unit", 1, 2, 16);
        let items: Vec<WorkItem> = (0..5)
            .map(|i| WorkItem {
                addr: BlockAddr::new(i * 3),
                kind: if i % 2 == 0 {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
                think_cycles: i,
            })
            .collect();
        t.streams[1] = items.clone();
        t.streams[0] = vec![items[0]];
        let mut g = gen_for(WorkloadSpec::trace(t), 1, 2, 99);
        for item in &items {
            assert_eq!(g.next_item(), *item);
        }
        assert_eq!(g.next_item(), items[0], "wraps past the recorded end");
    }

    #[test]
    #[should_panic(expected = "recorded on 2 cores")]
    fn trace_replay_rejects_mismatched_node_count() {
        use crate::TraceData;
        let t = TraceData::empty("unit", 1, 2, 16);
        gen_for(WorkloadSpec::trace(t), 0, 4, 99);
    }
}
