//! The per-core access-stream generator.

use patchsim_kernel::SimRng;
use patchsim_mem::{AccessKind, BlockAddr};
use patchsim_noc::NodeId;

use crate::{SharingProfile, WorkloadSpec};

/// One memory operation produced by a workload generator: what to access
/// and how long the core computes before issuing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// The block to access.
    pub addr: BlockAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Non-memory work preceding the access, in cycles.
    pub think_cycles: u64,
}

/// An infinite per-core stream of [`WorkItem`]s.
///
/// Deterministic: the stream is a pure function of `(spec, node,
/// num_nodes, rng seed)`. Different cores fork different RNG streams from
/// the same root seed, and perturbation runs use different root seeds —
/// the confidence-interval methodology of the paper.
#[derive(Debug)]
pub struct Generator {
    spec: WorkloadSpec,
    node: NodeId,
    num_nodes: u16,
    rng: SimRng,
    /// Second half of a migratory read-modify-write pair, if one is queued.
    pending: Option<WorkItem>,
    ops_generated: u64,
}

/// Address-space layout constants. Regions of different kinds (and of
/// different clusters) must never overlap; each cluster owns a fixed-size
/// window.
const SHARED_REGION: u64 = 0;
/// Per-cluster address stride: generous enough for any preset's regions.
const CLUSTER_STRIDE: u64 = 1 << 32;

impl Generator {
    /// Creates the generator for `node` of `num_nodes`. Forks a per-node
    /// RNG stream from `rng` so sibling generators are independent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn new(spec: WorkloadSpec, node: NodeId, num_nodes: u16, rng: SimRng) -> Self {
        assert!(node.raw() < num_nodes, "{node} out of range");
        let rng = rng.fork(node.raw() as u64);
        Generator {
            spec,
            node,
            num_nodes,
            rng,
            pending: None,
            ops_generated: 0,
        }
    }

    /// The node this generator belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of operations generated so far.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    /// Produces the next operation in the stream.
    pub fn next_item(&mut self) -> WorkItem {
        self.ops_generated += 1;
        if let Some(item) = self.pending.take() {
            return item;
        }
        match &self.spec {
            WorkloadSpec::Microbenchmark {
                table_blocks,
                write_frac,
                think_mean,
            } => {
                let (table_blocks, write_frac, think_mean) =
                    (*table_blocks, *write_frac, *think_mean);
                let addr = BlockAddr::new(self.rng.below(table_blocks));
                let kind = if self.rng.chance(write_frac) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                WorkItem {
                    addr,
                    kind,
                    think_cycles: self.think(think_mean),
                }
            }
            WorkloadSpec::Synthetic(profile) => {
                let profile = profile.clone();
                self.synthetic_item(&profile)
            }
        }
    }

    fn synthetic_item(&mut self, p: &SharingProfile) -> WorkItem {
        let think = self.think(p.think_mean);
        let cluster = self.node.raw() / p.cluster_size;
        let slot = (self.node.raw() % p.cluster_size) as u64;
        let cluster_size = p.cluster_size.min(self.num_nodes) as u64;
        let base = cluster as u64 * CLUSTER_STRIDE;

        if self.rng.chance(p.shared_frac) {
            let roll = self.rng.unit();
            if roll < p.migratory_frac {
                // Migratory pair: read now, write the same block next.
                let addr = BlockAddr::new(base + SHARED_REGION + self.rng.below(p.shared_blocks));
                self.pending = Some(WorkItem {
                    addr,
                    kind: AccessKind::Write,
                    think_cycles: self.think(p.think_mean),
                });
                WorkItem {
                    addr,
                    kind: AccessKind::Read,
                    think_cycles: think,
                }
            } else if roll < p.migratory_frac + p.producer_consumer_frac {
                // Producer–consumer ring: write one's own region or read
                // the predecessor's.
                let pc_base = base + p.shared_blocks;
                let (region_slot, kind) = if self.rng.chance(0.5) {
                    (slot, AccessKind::Write)
                } else {
                    ((slot + cluster_size - 1) % cluster_size, AccessKind::Read)
                };
                let addr = BlockAddr::new(
                    pc_base
                        + region_slot * p.pc_blocks_per_core
                        + self.rng.below(p.pc_blocks_per_core),
                );
                WorkItem {
                    addr,
                    kind,
                    think_cycles: think,
                }
            } else {
                // Plain shared-pool access.
                let addr = BlockAddr::new(base + SHARED_REGION + self.rng.below(p.shared_blocks));
                let kind = if self.rng.chance(p.shared_write_frac) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                WorkItem {
                    addr,
                    kind,
                    think_cycles: think,
                }
            }
        } else {
            // Private access.
            let private_base = base
                + p.shared_blocks
                + cluster_size * p.pc_blocks_per_core
                + slot * p.private_blocks;
            let addr = BlockAddr::new(private_base + self.rng.below(p.private_blocks));
            let kind = if self.rng.chance(p.private_write_frac) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            WorkItem {
                addr,
                kind,
                think_cycles: think,
            }
        }
    }

    /// Uniformly distributed think time with the requested mean.
    fn think(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            0
        } else {
            self.rng.below(2 * mean + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use std::collections::BTreeSet;

    fn gen_for(spec: WorkloadSpec, node: u16, n: u16, seed: u64) -> Generator {
        spec.generator(NodeId::new(node), n, SimRng::from_seed(seed))
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = gen_for(presets::oltp(), 3, 64, 42);
        let mut b = gen_for(presets::oltp(), 3, 64, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_item(), b.next_item());
        }
    }

    #[test]
    fn different_nodes_see_different_streams() {
        let mut a = gen_for(presets::oltp(), 0, 64, 42);
        let mut b = gen_for(presets::oltp(), 1, 64, 42);
        let same = (0..200).filter(|_| a.next_item() == b.next_item()).count();
        assert!(same < 20);
    }

    #[test]
    fn microbenchmark_stays_in_table_with_write_ratio() {
        let mut g = gen_for(WorkloadSpec::microbenchmark(), 0, 4, 7);
        let mut writes = 0;
        for _ in 0..10_000 {
            let item = g.next_item();
            assert!(item.addr.raw() < 16 * 1024);
            if item.kind.is_write() {
                writes += 1;
            }
        }
        assert!(
            (2_700..3_300).contains(&writes),
            "write frac ~0.3, got {writes}"
        );
    }

    #[test]
    fn migratory_pairs_are_read_then_write_same_block() {
        let spec = WorkloadSpec::Synthetic(SharingProfile {
            migratory_frac: 1.0,
            shared_frac: 1.0,
            producer_consumer_frac: 0.0,
            ..match presets::oltp() {
                WorkloadSpec::Synthetic(p) => p,
                _ => unreachable!(),
            }
        });
        let mut g = gen_for(spec, 0, 16, 1);
        for _ in 0..100 {
            let first = g.next_item();
            let second = g.next_item();
            assert_eq!(first.kind, AccessKind::Read);
            assert_eq!(second.kind, AccessKind::Write);
            assert_eq!(first.addr, second.addr);
        }
    }

    #[test]
    fn private_regions_do_not_overlap_across_nodes() {
        let spec = presets::jbb();
        let mut seen: Vec<(u16, BTreeSet<u64>)> = Vec::new();
        for node in 0..4u16 {
            let mut g = gen_for(spec.clone(), node, 16, 9);
            let mut privates = BTreeSet::new();
            for _ in 0..2000 {
                let item = g.next_item();
                // Shared pool and pc ring live below the private bases.
                let WorkloadSpec::Synthetic(p) = &spec else {
                    unreachable!()
                };
                let private_floor = p.shared_blocks + 16 * p.pc_blocks_per_core;
                if item.addr.raw() >= private_floor {
                    privates.insert(item.addr.raw());
                }
            }
            seen.push((node, privates));
        }
        for (i, (_, a)) in seen.iter().enumerate() {
            for (_, b) in seen.iter().skip(i + 1) {
                assert!(a.is_disjoint(b), "private regions overlap");
            }
        }
    }

    #[test]
    fn clusters_do_not_share() {
        // Nodes 0 and 16 are in different 16-core clusters: no common
        // addresses at all.
        let spec = presets::apache();
        let mut a = gen_for(spec.clone(), 0, 64, 5);
        let mut b = gen_for(spec, 16, 64, 5);
        let addrs_a: BTreeSet<u64> = (0..3000).map(|_| a.next_item().addr.raw()).collect();
        let addrs_b: BTreeSet<u64> = (0..3000).map(|_| b.next_item().addr.raw()).collect();
        assert!(addrs_a.is_disjoint(&addrs_b));
    }

    #[test]
    fn nodes_within_cluster_share_the_pool() {
        let spec = presets::apache();
        let mut a = gen_for(spec.clone(), 0, 64, 5);
        let mut b = gen_for(spec, 1, 64, 5);
        let addrs_a: BTreeSet<u64> = (0..3000).map(|_| a.next_item().addr.raw()).collect();
        let addrs_b: BTreeSet<u64> = (0..3000).map(|_| b.next_item().addr.raw()).collect();
        assert!(!addrs_a.is_disjoint(&addrs_b), "cluster members share");
    }

    #[test]
    fn think_time_has_requested_mean() {
        let mut g = gen_for(WorkloadSpec::microbenchmark(), 0, 4, 3);
        let total: u64 = (0..10_000).map(|_| g.next_item().think_cycles).sum();
        let mean = total as f64 / 10_000.0;
        assert!(
            (8.0..12.0).contains(&mean),
            "mean think {mean} should be ~10"
        );
    }

    #[test]
    fn ops_generated_counts() {
        let mut g = gen_for(WorkloadSpec::microbenchmark(), 0, 4, 3);
        for _ in 0..5 {
            g.next_item();
        }
        assert_eq!(g.ops_generated(), 5);
    }
}
