//! Open-loop arrival processes: decoupled arrivals with bounded backlogs.
//!
//! Every other workload in this crate is **closed-loop**: a core issues
//! its next access only after the previous one completes, so a slow
//! protocol throttles its own offered load and saturation is structurally
//! invisible. An [`ArrivalProfile`] instead describes an **open-loop**
//! stream — operations *arrive* on a clock of their own (fixed-rate,
//! Poisson-thinned, or burst-modulated interarrival gaps), queue in a
//! bounded per-core backlog, and overflow according to a typed
//! [`OverloadPolicy`]. The core simulator drains the backlog one
//! operation at a time; when arrivals outpace completions the backlog
//! fills, sojourn times (arrival→completion) grow, and — past the knee —
//! operations drop or arrivals stall. That hockey-stick is the entire
//! point: it is what offered-load sweeps measure.
//!
//! Determinism contract: interarrival gaps and key/write draws come from
//! a dedicated RNG stream ([`streams::ARRIVAL`](patchsim_kernel::streams))
//! forked *below* each core's per-node workload stream, exactly like the
//! service generators' `serv` stream — so adding open-loop workloads
//! cannot shift any draw an existing workload makes, and every recorded
//! golden stays byte-identical.

use patchsim_kernel::SimRng;

use crate::ZipfSampler;

/// The interarrival-gap process of an open-loop stream. All gaps are in
/// cycles and at least 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// One arrival every `period` cycles exactly.
    Fixed {
        /// The constant interarrival gap, in cycles.
        period: u64,
    },
    /// Memoryless arrivals at rate `1/period`: gaps are geometric with
    /// mean `period` (a Poisson process thinned to integer cycles).
    Poisson {
        /// The mean interarrival gap, in cycles.
        period: u64,
    },
    /// Poisson arrivals whose rate multiplies by `burst_div` for the
    /// first `burst_len` arrivals of every `burst_period`-arrival cycle —
    /// an open-loop burst, unlike the closed-loop think-time division of
    /// the service generators.
    Burst {
        /// The mean interarrival gap outside bursts, in cycles.
        period: u64,
        /// Burst cycle length, in arrivals.
        burst_period: u64,
        /// Arrivals at the start of each cycle that arrive faster.
        burst_len: u64,
        /// Gap divisor during a burst (rate multiplier).
        burst_div: u64,
    },
}

impl ArrivalProcess {
    /// The process's mean interarrival gap outside any burst, in cycles.
    pub fn period(&self) -> u64 {
        match *self {
            ArrivalProcess::Fixed { period }
            | ArrivalProcess::Poisson { period }
            | ArrivalProcess::Burst { period, .. } => period,
        }
    }
}

/// What happens when an operation arrives to a full backlog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// The arriving operation is discarded and counted as a drop.
    Drop,
    /// The arrival process stalls until the backlog has room; stalled
    /// time is counted as backlog (blocked) time.
    Block,
}

/// A complete open-loop workload: the arrival process, the per-core
/// backlog bound and overload policy, and the key/write mix of the
/// arriving operations (a Zipf-skewed shared keyspace, like the service
/// generators).
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalProfile {
    /// Canonical display name — the `open:...` spec string that parses
    /// back to this profile.
    pub name: String,
    /// The interarrival-gap process.
    pub process: ArrivalProcess,
    /// Maximum queued (not yet issued) operations per core.
    pub backlog_cap: u32,
    /// What a full backlog does to new arrivals.
    pub policy: OverloadPolicy,
    /// Shared keyspace size in blocks.
    pub keys: u64,
    /// Probability an arriving operation is a write.
    pub write_frac: f64,
    /// Zipf skew parameter `theta` in `[0, 1)`; `0` is uniform.
    pub theta: f64,
}

/// Default backlog bound when the spec does not set `cap=`.
pub const DEFAULT_BACKLOG_CAP: u32 = 64;
/// Default keyspace size when the spec does not set `keys=`.
pub const DEFAULT_KEYS: u64 = 4096;
/// Default write fraction when the spec does not set `write=`.
pub const DEFAULT_WRITE_FRAC: f64 = 0.3;

impl ArrivalProfile {
    /// Builds a profile from the `open:` spec body (the part after the
    /// `open:` prefix): a process — `fixed:PERIOD`, `poisson:PERIOD`, or
    /// `burst:PERIOD:BPERIOD:BLEN:BDIV` — optionally followed by
    /// comma-separated options `cap=N`, `policy={drop,block}`, `keys=N`,
    /// `write=F`, `theta=F`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(',');
        let process = Self::parse_process(parts.next().unwrap_or(""))?;
        let mut cap = DEFAULT_BACKLOG_CAP;
        let mut policy = OverloadPolicy::Drop;
        let mut keys = DEFAULT_KEYS;
        let mut write_frac = DEFAULT_WRITE_FRAC;
        let mut theta = 0.0f64;
        for opt in parts {
            let (key, value) = opt
                .split_once('=')
                .ok_or_else(|| format!("arrival option '{opt}' is not KEY=VALUE"))?;
            match key {
                "cap" => {
                    cap = value
                        .parse()
                        .map_err(|_| format!("invalid cap '{value}'"))?;
                    if cap == 0 {
                        return Err("cap must be at least 1".into());
                    }
                }
                "policy" => {
                    policy = match value {
                        "drop" => OverloadPolicy::Drop,
                        "block" => OverloadPolicy::Block,
                        _ => return Err(format!("invalid policy '{value}' (drop or block)")),
                    };
                }
                "keys" => {
                    keys = value
                        .parse()
                        .map_err(|_| format!("invalid keys '{value}'"))?;
                    if keys == 0 {
                        return Err("keys must be at least 1".into());
                    }
                }
                "write" => {
                    write_frac = value
                        .parse()
                        .map_err(|_| format!("invalid write fraction '{value}'"))?;
                    if !(0.0..=1.0).contains(&write_frac) {
                        return Err(format!("write fraction {write_frac} outside [0, 1]"));
                    }
                }
                "theta" => {
                    theta = value
                        .parse()
                        .map_err(|_| format!("invalid theta '{value}'"))?;
                    if !(0.0..1.0).contains(&theta) {
                        return Err(format!("theta {theta} outside [0, 1)"));
                    }
                }
                _ => return Err(format!("unknown arrival option '{key}'")),
            }
        }
        let mut profile = ArrivalProfile {
            name: String::new(),
            process,
            backlog_cap: cap,
            policy,
            keys,
            write_frac,
            theta,
        };
        profile.name = profile.canonical_name();
        Ok(profile)
    }

    fn parse_process(spec: &str) -> Result<ArrivalProcess, String> {
        let mut fields = spec.split(':');
        let kind = fields.next().unwrap_or("");
        let mut num = |what: &str| -> Result<u64, String> {
            let v = fields
                .next()
                .ok_or_else(|| format!("{kind} process is missing its {what}"))?;
            let n: u64 = v.parse().map_err(|_| format!("invalid {what} '{v}'"))?;
            if n == 0 {
                return Err(format!("{what} must be at least 1"));
            }
            Ok(n)
        };
        let process = match kind {
            "fixed" => ArrivalProcess::Fixed {
                period: num("period")?,
            },
            "poisson" => ArrivalProcess::Poisson {
                period: num("period")?,
            },
            "burst" => {
                let period = num("period")?;
                let burst_period = num("burst period")?;
                let burst_len = num("burst length")?;
                let burst_div = num("burst divisor")?;
                if burst_len > burst_period {
                    return Err(format!(
                        "burst length {burst_len} exceeds burst period {burst_period}"
                    ));
                }
                ArrivalProcess::Burst {
                    period,
                    burst_period,
                    burst_len,
                    burst_div,
                }
            }
            _ => {
                return Err(format!(
                    "unknown arrival process '{kind}' (fixed, poisson, or burst)"
                ))
            }
        };
        if fields.next().is_some() {
            return Err(format!("trailing fields after the {kind} process"));
        }
        Ok(process)
    }

    /// The canonical `open:...` spec string for this profile: parsing it
    /// reproduces the profile, defaults omitted.
    fn canonical_name(&self) -> String {
        let mut name = match self.process {
            ArrivalProcess::Fixed { period } => format!("open:fixed:{period}"),
            ArrivalProcess::Poisson { period } => format!("open:poisson:{period}"),
            ArrivalProcess::Burst {
                period,
                burst_period,
                burst_len,
                burst_div,
            } => format!("open:burst:{period}:{burst_period}:{burst_len}:{burst_div}"),
        };
        if self.backlog_cap != DEFAULT_BACKLOG_CAP {
            name.push_str(&format!(",cap={}", self.backlog_cap));
        }
        if self.policy == OverloadPolicy::Block {
            name.push_str(",policy=block");
        }
        if self.keys != DEFAULT_KEYS {
            name.push_str(&format!(",keys={}", self.keys));
        }
        if self.write_frac != DEFAULT_WRITE_FRAC {
            name.push_str(&format!(",write={}", self.write_frac));
        }
        if self.theta != 0.0 {
            name.push_str(&format!(",theta={}", self.theta));
        }
        name
    }

    /// The sampler over this profile's keyspace.
    pub(crate) fn sampler(&self) -> ZipfSampler {
        ZipfSampler::new(self.keys.max(1), self.theta)
    }
}

/// Draws the next interarrival gap (≥ 1 cycle). `arrival_index` is the
/// 0-based index of the arrival whose gap is being drawn, which keys the
/// burst window — time variation depends on the generator's own counter,
/// never on simulation time, keeping the stream a pure function of
/// `(profile, node, seed)`.
///
/// Every process consumes the same number of draws per gap (one, except
/// `Fixed` which consumes none), so the key/write draws that follow stay
/// aligned no matter which gap came out.
pub(crate) fn next_gap(process: ArrivalProcess, arrival_index: u64, rng: &mut SimRng) -> u64 {
    match process {
        ArrivalProcess::Fixed { period } => period.max(1),
        ArrivalProcess::Poisson { period } => geometric_gap(period.max(1), rng),
        ArrivalProcess::Burst {
            period,
            burst_period,
            burst_len,
            burst_div,
        } => {
            let period = if burst_period > 0 && arrival_index % burst_period < burst_len {
                (period / burst_div.max(1)).max(1)
            } else {
                period.max(1)
            };
            geometric_gap(period, rng)
        }
    }
}

/// A geometric gap with mean `period`, via inverse-CDF on one uniform
/// draw: the discrete analogue of exponential interarrival times.
fn geometric_gap(period: u64, rng: &mut SimRng) -> u64 {
    if period <= 1 {
        // Degenerate rate-1 process; still consume the draw so the
        // stream alignment is independent of the period.
        let _ = rng.unit();
        return 1;
    }
    let p = 1.0 / period as f64;
    let u = rng.unit();
    // u < 1 always, so the logs are finite and negative; the ratio is
    // the geometric quantile, floored, with a +1 minimum gap.
    let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    (gap as u64).saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_the_canonical_name() {
        for spec in [
            "fixed:100",
            "poisson:40",
            "burst:100:256:64:8",
            "poisson:40,cap=16,policy=block,keys=1024,write=0.5,theta=0.9",
        ] {
            let p = ArrivalProfile::parse(spec).unwrap();
            let body = p.name.strip_prefix("open:").unwrap().to_string();
            assert_eq!(ArrivalProfile::parse(&body).unwrap(), p, "{spec}");
        }
    }

    #[test]
    fn parse_applies_defaults() {
        let p = ArrivalProfile::parse("poisson:100").unwrap();
        assert_eq!(p.process, ArrivalProcess::Poisson { period: 100 });
        assert_eq!(p.backlog_cap, DEFAULT_BACKLOG_CAP);
        assert_eq!(p.policy, OverloadPolicy::Drop);
        assert_eq!(p.keys, DEFAULT_KEYS);
        assert_eq!(p.write_frac, DEFAULT_WRITE_FRAC);
        assert_eq!(p.theta, 0.0);
        assert_eq!(p.name, "open:poisson:100");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "warp:10",
            "fixed",
            "fixed:0",
            "fixed:ten",
            "poisson:10:20",
            "burst:100:256:300:8", // burst_len > burst_period
            "poisson:10,cap=0",
            "poisson:10,policy=panic",
            "poisson:10,write=1.5",
            "poisson:10,theta=1.0",
            "poisson:10,keys=0",
            "poisson:10,frobnicate=1",
            "poisson:10,cap",
        ] {
            assert!(ArrivalProfile::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn fixed_gaps_are_constant_and_draw_free() {
        let mut rng = SimRng::from_seed(1);
        let before = rng.clone();
        for i in 0..10 {
            assert_eq!(
                next_gap(ArrivalProcess::Fixed { period: 25 }, i, &mut rng),
                25
            );
        }
        // No draws consumed: the stream is untouched.
        assert_eq!(rng.below(1 << 32), before.clone().below(1 << 32));
    }

    #[test]
    fn poisson_gaps_have_the_requested_mean() {
        let mut rng = SimRng::from_seed(7);
        let n = 20_000u64;
        let total: u64 = (0..n)
            .map(|i| next_gap(ArrivalProcess::Poisson { period: 50 }, i, &mut rng))
            .sum();
        let mean = total as f64 / n as f64;
        assert!(
            (45.0..55.0).contains(&mean),
            "mean gap {mean} should be ~50"
        );
    }

    #[test]
    fn burst_windows_arrive_faster() {
        let process = ArrivalProcess::Burst {
            period: 80,
            burst_period: 256,
            burst_len: 64,
            burst_div: 8,
        };
        let mut rng = SimRng::from_seed(3);
        let mut burst_total = 0u64;
        let mut steady_total = 0u64;
        for i in 0..25_600u64 {
            let gap = next_gap(process, i, &mut rng);
            if i % 256 < 64 {
                burst_total += gap;
            } else {
                steady_total += gap;
            }
        }
        let burst_mean = burst_total as f64 / (25_600.0 / 4.0);
        let steady_mean = steady_total as f64 / (25_600.0 * 3.0 / 4.0);
        assert!(
            burst_mean < steady_mean / 4.0,
            "burst mean {burst_mean:.1} vs steady {steady_mean:.1}"
        );
    }

    #[test]
    fn gaps_are_always_positive() {
        let mut rng = SimRng::from_seed(5);
        for i in 0..5000 {
            assert!(next_gap(ArrivalProcess::Poisson { period: 1 }, i, &mut rng) >= 1);
        }
    }
}
