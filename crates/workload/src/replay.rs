//! In-memory recorded traces: the replay side of the trace subsystem.
//!
//! A [`TraceData`] is the decoded form of a recorded run: one
//! [`WorkItem`] stream per core, plus the metadata needed to rebuild the
//! exact simulation that produced it (workload label, root seed, node
//! count, and the table-sizing hint the recording run used). The on-disk
//! encoding lives in the `patchsim-trace` crate; replay happens by
//! wrapping a `TraceData` in
//! [`WorkloadSpec::Trace`](crate::WorkloadSpec::Trace), which turns every
//! core's generator into a cursor over its recorded stream.

use crate::generator::WorkItem;

/// A fully decoded trace: per-core access streams plus recording
/// metadata.
///
/// Replay is bit-identical by construction: the streams carry every
/// address, access kind, and think time the recorded run's generators
/// produced, in issue order, and nothing else in the simulator draws from
/// the workload RNG stream — so a replayed run processes the identical
/// event sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceData {
    /// The recorded workload's display name (e.g. `"oltp"`).
    pub label: String,
    /// The root seed of the recorded run. Replays must reuse it so
    /// seed-derived streams *other* than the workload's (e.g. the fault
    /// schedule) reproduce too.
    pub seed: u64,
    /// The recorded system's core count. A trace only replays on a
    /// system of exactly this size.
    pub num_nodes: u16,
    /// The working-set estimate (in blocks) the recording run pre-sized
    /// its protocol tables with. Replays reuse it verbatim so table
    /// capacities — and therefore every capacity-sensitive detail of the
    /// run — match the recording exactly.
    pub working_set_blocks: u64,
    /// One recorded [`WorkItem`] stream per core, in issue order.
    pub streams: Vec<Vec<WorkItem>>,
}

impl TraceData {
    /// An empty trace shell for `num_nodes` cores, ready for a recorder
    /// to append items to.
    pub fn empty(label: &str, seed: u64, num_nodes: u16, working_set_blocks: u64) -> Self {
        TraceData {
            label: label.to_string(),
            seed,
            num_nodes,
            working_set_blocks,
            streams: vec![Vec::new(); num_nodes as usize],
        }
    }

    /// Total recorded items across all cores.
    pub fn total_items(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Number of distinct blocks the trace touches (an exact count, used
    /// in summaries; table pre-sizing uses
    /// [`working_set_blocks`](TraceData::working_set_blocks) instead).
    pub fn distinct_blocks(&self) -> u64 {
        let mut blocks: Vec<u64> = self
            .streams
            .iter()
            .flat_map(|s| s.iter().map(|item| item.addr.raw()))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_mem::{AccessKind, BlockAddr};

    fn item(addr: u64, write: bool) -> WorkItem {
        WorkItem {
            addr: BlockAddr::new(addr),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            think_cycles: 3,
        }
    }

    #[test]
    fn empty_shell_has_one_stream_per_core() {
        let t = TraceData::empty("x", 7, 4, 64);
        assert_eq!(t.streams.len(), 4);
        assert_eq!(t.total_items(), 0);
        assert_eq!(t.distinct_blocks(), 0);
    }

    #[test]
    fn distinct_blocks_dedups_across_cores() {
        let mut t = TraceData::empty("x", 7, 2, 64);
        t.streams[0] = vec![item(5, false), item(9, true), item(5, true)];
        t.streams[1] = vec![item(9, false), item(11, false)];
        assert_eq!(t.total_items(), 5);
        assert_eq!(t.distinct_blocks(), 3);
    }
}
